package query

import (
	"strings"
	"testing"

	"scotty/internal/aggregate"
	"scotty/internal/stream"
)

func ident(v float64) float64 { return v }

func TestBuildAndRun(t *testing.T) {
	b := Aggregate(
		Over[float64](Stream{Lateness: 5000}).
			Window(SlidingTime[float64](10_000, 2_000)).
			Window(SessionGap[float64](1_000)),
		aggregate.Sum(ident),
	)
	op, ids, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("ids: %v", ids)
	}
	for ts := int64(0); ts < 30_000; ts += 100 {
		op.ProcessElement(stream.Event[float64]{Time: ts, Seq: ts, Value: 1})
	}
	rs := op.ProcessWatermark(stream.MaxTime)
	if len(rs) == 0 {
		t.Fatal("no results from built operator")
	}
}

func TestExplainDerivesCharacteristics(t *testing.T) {
	b := Aggregate(
		Over[float64](Stream{Ordered: true}).
			Window(TumblingTime[float64](1000)).
			Window(LastNEvery[float64](10, 500)).
			Window(SessionGap[float64](200)),
		aggregate.Median(ident),
	)
	ch, err := b.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Ordered || !ch.Commutative || ch.Kind != aggregate.Holistic {
		t.Fatalf("characteristics: %+v", ch)
	}
	if ch.ContextFree != 1 || ch.ContextAware != 2 || ch.ForwardAware != 1 || ch.Sessions != 1 {
		t.Fatalf("window classification: %+v", ch)
	}
	if len(ch.Measures) != 2 {
		t.Fatalf("measures: %v", ch.Measures)
	}
	// An FCA window forces tuple storage even in order (Fig 4).
	if !ch.StoresTuples {
		t.Fatal("FCA query must imply tuple storage")
	}
	if !strings.Contains(strings.Join(ch.WindowSummary, ";"), "SESSION") {
		t.Fatalf("summary: %v", ch.WindowSummary)
	}
}

func TestBuildRejectsEmptySpecs(t *testing.T) {
	if _, _, err := Aggregate(Over[float64](Stream{}), aggregate.Sum(ident)).Build(); err == nil {
		t.Fatal("no windows must be rejected")
	}
}

func TestBuildRejectsMixedMeasuresUnordered(t *testing.T) {
	b := Aggregate(
		Over[float64](Stream{}).
			Window(TumblingTime[float64](1000)).
			Window(TumblingCount[float64](10)),
		aggregate.Sum(ident),
	)
	if _, _, err := b.Build(); err == nil {
		t.Fatal("mixed measures on an unordered stream must be rejected")
	}
	if _, err := b.Explain(); err == nil {
		t.Fatal("Explain must surface the same rejection")
	}
}

func TestSpecsAreReusable(t *testing.T) {
	spec := TumblingTime[float64](500)
	b1 := Aggregate(Over[float64](Stream{Ordered: true}).Window(spec), aggregate.Count[float64]())
	b2 := Aggregate(Over[float64](Stream{Ordered: true}).Window(spec), aggregate.Count[float64]())
	op1, _, err1 := b1.Build()
	op2, _, err2 := b2.Build()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// Definitions must be fresh instances: feeding one operator must not
	// disturb the other's trigger state.
	for ts := int64(0); ts < 3000; ts += 100 {
		op1.ProcessElement(stream.Event[float64]{Time: ts, Seq: ts, Value: 1})
	}
	rs := op2.ProcessWatermark(stream.MaxTime)
	if len(rs) != 0 {
		t.Fatalf("operator 2 emitted %d windows without input", len(rs))
	}
}
