package query

import (
	"strings"
	"testing"

	"scotty/internal/aggregate"
	"scotty/internal/stream"
)

func ident(v float64) float64 { return v }

func TestBuildAndRun(t *testing.T) {
	b := Aggregate(
		Over[float64](Stream{Lateness: 5000}).
			Window(SlidingTime[float64](10_000, 2_000)).
			Window(SessionGap[float64](1_000)),
		aggregate.Sum(ident),
	)
	op, ids, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("ids: %v", ids)
	}
	for ts := int64(0); ts < 30_000; ts += 100 {
		op.ProcessElement(stream.Event[float64]{Time: ts, Seq: ts, Value: 1})
	}
	rs := op.ProcessWatermark(stream.MaxTime)
	if len(rs) == 0 {
		t.Fatal("no results from built operator")
	}
}

func TestExplainDerivesCharacteristics(t *testing.T) {
	b := Aggregate(
		Over[float64](Stream{Ordered: true}).
			Window(TumblingTime[float64](1000)).
			Window(LastNEvery[float64](10, 500)).
			Window(SessionGap[float64](200)),
		aggregate.Median(ident),
	)
	ch, err := b.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Ordered || !ch.Commutative || ch.Kind != aggregate.Holistic {
		t.Fatalf("characteristics: %+v", ch)
	}
	if ch.ContextFree != 1 || ch.ContextAware != 2 || ch.ForwardAware != 1 || ch.Sessions != 1 {
		t.Fatalf("window classification: %+v", ch)
	}
	if len(ch.Measures) != 2 {
		t.Fatalf("measures: %v", ch.Measures)
	}
	// An FCA window forces tuple storage even in order (Fig 4).
	if !ch.StoresTuples {
		t.Fatal("FCA query must imply tuple storage")
	}
	if !strings.Contains(strings.Join(ch.WindowSummary, ";"), "SESSION") {
		t.Fatalf("summary: %v", ch.WindowSummary)
	}
}

func TestBuildRejectsEmptySpecs(t *testing.T) {
	if _, _, err := Aggregate(Over[float64](Stream{}), aggregate.Sum(ident)).Build(); err == nil {
		t.Fatal("no windows must be rejected")
	}
}

func TestBuildRejectsMixedMeasuresUnordered(t *testing.T) {
	b := Aggregate(
		Over[float64](Stream{}).
			Window(TumblingTime[float64](1000)).
			Window(TumblingCount[float64](10)),
		aggregate.Sum(ident),
	)
	if _, _, err := b.Build(); err == nil {
		t.Fatal("mixed measures on an unordered stream must be rejected")
	}
	if _, err := b.Explain(); err == nil {
		t.Fatal("Explain must surface the same rejection")
	}
}

func TestSpecsAreReusable(t *testing.T) {
	spec := TumblingTime[float64](500)
	b1 := Aggregate(Over[float64](Stream{Ordered: true}).Window(spec), aggregate.Count[float64]())
	b2 := Aggregate(Over[float64](Stream{Ordered: true}).Window(spec), aggregate.Count[float64]())
	op1, _, err1 := b1.Build()
	op2, _, err2 := b2.Build()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// Definitions must be fresh instances: feeding one operator must not
	// disturb the other's trigger state.
	for ts := int64(0); ts < 3000; ts += 100 {
		op1.ProcessElement(stream.Event[float64]{Time: ts, Seq: ts, Value: 1})
	}
	rs := op2.ProcessWatermark(stream.MaxTime)
	if len(rs) != 0 {
		t.Fatalf("operator 2 emitted %d windows without input", len(rs))
	}
}

// TestBuildFleetSharesPhysicalWork lowers the same specification through the
// sharing layer: BuildFleet must return logical ids in declaration order,
// dedup the exact-duplicate window, factor the correlated sliding members,
// and emit result rows tagged with the logical ids.
func TestBuildFleetSharesPhysicalWork(t *testing.T) {
	b := Aggregate(
		Over[float64](Stream{Lateness: 2000}).
			Window(SlidingTime[float64](4000, 250)).
			Window(SlidingTime[float64](8000, 250)).
			Window(SlidingTime[float64](2000, 250)).
			Window(SlidingTime[float64](4000, 250)), // exact duplicate of the first
		aggregate.Sum(ident),
	)
	fl, ids, err := b.BuildFleet()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("ids: %v", ids)
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("logical ids not in declaration order: %v", ids)
		}
	}
	// Four logical queries collapse to three distinct specs (the duplicate
	// shares its twin's), and on a virgin stream the optimizer factors all of
	// them onto one 250ms factor window immediately — one physical query.
	plan := fl.Plan()
	if plan.Logical != 4 || plan.Specs != 3 {
		t.Fatalf("duplicate window not deduplicated: %+v", plan)
	}
	if plan.Physical >= 4 {
		t.Fatalf("no physical sharing: %+v", plan)
	}

	seen := map[int]bool{}
	for ts := int64(0); ts < 60_000; ts += 50 {
		for _, r := range fl.ProcessElement(stream.Event[float64]{Time: ts, Seq: ts, Value: 1}) {
			seen[r.Query] = true
		}
		if ts%1000 == 0 {
			for _, r := range fl.ProcessWatermark(ts) {
				seen[r.Query] = true
			}
		}
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("logical query %d never emitted (got results for %v)", id, seen)
		}
	}
	if fl.Plan().Factored == 0 {
		t.Fatal("correlated sliding members were never rewritten onto a factor window")
	}

	// The no-window and no-function rejections apply to BuildFleet too.
	if _, _, err := Aggregate(Over[float64](Stream{}), aggregate.Sum(ident)).BuildFleet(); err == nil {
		t.Fatal("fleet build without windows must be rejected")
	}
}
