// Package query is the paper's query-translation front end (Fig 3): users
// specify queries in a small functional API; the translator observes each
// query's workload characteristics — window type, windowing measure,
// aggregation-function properties — together with the declared stream
// characteristics (in-order vs out-of-order) and forwards them to the
// general slicing aggregator, which adapts automatically (§5).
//
// The builder mirrors what a stream-SQL front end would lower to:
//
//	q := query.Over[float64](query.Stream{Ordered: false, Lateness: 5000}).
//	        Window(query.SlidingTime(10_000, 2_000)).
//	        Window(query.SessionGap(1_000)).
//	        Aggregate(aggregate.Sum(ident))
//	op, ids, err := q.Build()
package query

import (
	"fmt"

	"scotty/internal/aggregate"
	"scotty/internal/core"
	"scotty/internal/fleet"
	"scotty/internal/stream"
	"scotty/internal/window"
)

// Stream declares the input-stream characteristics the translator cannot
// observe from queries alone (§5: "the query translator observes ... the
// characteristics of input streams").
type Stream struct {
	// Ordered guarantees chronological arrival.
	Ordered bool
	// Lateness is the allowed lateness for out-of-order streams (ms).
	Lateness int64
	// Eager requests the low-latency eager aggregate store.
	Eager bool
}

// WindowSpec is a declarative window description, turned into a concrete
// window.Definition at build time (so one spec can be reused across builds).
type WindowSpec[V any] struct {
	describe string
	make     func() window.Definition
}

// String describes the window for diagnostics.
func (w WindowSpec[V]) String() string { return w.describe }

// TumblingTime declares a tumbling window of length ms.
func TumblingTime[V any](length int64) WindowSpec[V] {
	return WindowSpec[V]{
		describe: fmt.Sprintf("TUMBLING(%d ms)", length),
		make:     func() window.Definition { return window.Tumbling(stream.Time, length) },
	}
}

// SlidingTime declares a sliding window of length ms advancing every slide ms.
func SlidingTime[V any](length, slide int64) WindowSpec[V] {
	return WindowSpec[V]{
		describe: fmt.Sprintf("SLIDING(%d ms, %d ms)", length, slide),
		make:     func() window.Definition { return window.Sliding(stream.Time, length, slide) },
	}
}

// TumblingCount declares a tumbling window of n tuples.
func TumblingCount[V any](n int64) WindowSpec[V] {
	return WindowSpec[V]{
		describe: fmt.Sprintf("TUMBLING(%d ROWS)", n),
		make:     func() window.Definition { return window.Tumbling(stream.Count, n) },
	}
}

// SlidingCount declares a sliding window of n tuples advancing every s tuples.
func SlidingCount[V any](n, s int64) WindowSpec[V] {
	return WindowSpec[V]{
		describe: fmt.Sprintf("SLIDING(%d ROWS, %d ROWS)", n, s),
		make:     func() window.Definition { return window.Sliding(stream.Count, n, s) },
	}
}

// SessionGap declares a session window with the given inactivity gap (ms).
func SessionGap[V any](gap int64) WindowSpec[V] {
	return WindowSpec[V]{
		describe: fmt.Sprintf("SESSION(%d ms)", gap),
		make:     func() window.Definition { return window.Session[V](gap) },
	}
}

// PunctuatedBy declares punctuation windows delimited by marker tuples.
func PunctuatedBy[V any](pred func(V) bool) WindowSpec[V] {
	return WindowSpec[V]{
		describe: "PUNCTUATED",
		make:     func() window.Definition { return window.Punctuation[V](pred) },
	}
}

// LastNEvery declares the FCA multi-measure window "last n tuples every p ms".
func LastNEvery[V any](n, p int64) WindowSpec[V] {
	return WindowSpec[V]{
		describe: fmt.Sprintf("LAST %d ROWS EVERY %d ms", n, p),
		make:     func() window.Definition { return window.CountInTime[V](n, p) },
	}
}

// Builder accumulates a multi-query specification over one stream.
type Builder[V, A, Out any] struct {
	strm    Stream
	windows []WindowSpec[V]
	fn      aggregate.Function[V, A, Out]
	hasFn   bool
}

// Over starts a specification for a stream of V-typed payloads. The
// aggregate type parameters are fixed by the later Aggregate call, so the
// untyped entry point defers them:
func Over[V any](s Stream) Phase1[V] { return Phase1[V]{strm: s} }

// Phase1 is the builder before the aggregation function is known.
type Phase1[V any] struct {
	strm    Stream
	windows []WindowSpec[V]
}

// Window adds a window query; every window shares the stream's slices.
func (p Phase1[V]) Window(w WindowSpec[V]) Phase1[V] {
	p.windows = append(p.windows, w)
	return p
}

// Aggregate fixes the aggregation function and completes the specification.
func Aggregate[V, A, Out any](p Phase1[V], f aggregate.Function[V, A, Out]) *Builder[V, A, Out] {
	return &Builder[V, A, Out]{strm: p.strm, windows: p.windows, fn: f, hasFn: true}
}

// Characteristics summarizes what the translator derived — the inputs of the
// paper's Fig 4 decision and §5 adaptation.
type Characteristics struct {
	Ordered       bool
	Commutative   bool
	Invertible    bool
	Kind          aggregate.Kind
	Measures      []stream.Measure
	ContextAware  int
	ContextFree   int
	ForwardAware  int
	Sessions      int
	StoresTuples  bool
	WindowSummary []string
}

// Build translates the specification into a configured general-slicing
// operator, returning the query ids in declaration order.
func (b *Builder[V, A, Out]) Build() (*core.Aggregator[V, A, Out], []int, error) {
	if !b.hasFn {
		return nil, nil, fmt.Errorf("query: no aggregation function specified")
	}
	if len(b.windows) == 0 {
		return nil, nil, fmt.Errorf("query: no window specified")
	}
	ag := core.New(b.fn, core.Options{
		Ordered:  b.strm.Ordered,
		Lateness: b.strm.Lateness,
		Eager:    b.strm.Eager,
	})
	ids := make([]int, 0, len(b.windows))
	for _, w := range b.windows {
		id, err := ag.AddQuery(w.make())
		if err != nil {
			return nil, nil, fmt.Errorf("query: %s: %w", w, err)
		}
		ids = append(ids, id)
	}
	return ag, ids, nil
}

// BuildFleet translates the specification into a query fleet — the sharing
// layer that dedups exact-duplicate windows and rewrites correlated periodic
// time windows onto cost-chosen factor windows (docs/SHARING.md) — returning
// the logical query ids in declaration order. Queries can be added and
// removed at runtime via the returned fleet; results carry logical ids.
func (b *Builder[V, A, Out]) BuildFleet() (*fleet.Fleet[V, A, Out], []int, error) {
	if !b.hasFn {
		return nil, nil, fmt.Errorf("query: no aggregation function specified")
	}
	if len(b.windows) == 0 {
		return nil, nil, fmt.Errorf("query: no window specified")
	}
	fl := fleet.New(b.fn, fleet.Options{Options: core.Options{
		Ordered:  b.strm.Ordered,
		Lateness: b.strm.Lateness,
		Eager:    b.strm.Eager,
	}})
	ids := make([]int, 0, len(b.windows))
	for _, w := range b.windows {
		id, err := fl.AddQuery(w.make())
		if err != nil {
			return nil, nil, fmt.Errorf("query: %s: %w", w, err)
		}
		ids = append(ids, id)
	}
	return fl, ids, nil
}

// Explain reports the derived workload characteristics without building an
// operator — the "what will the aggregator adapt to?" view.
func (b *Builder[V, A, Out]) Explain() (Characteristics, error) {
	ag, _, err := b.Build()
	if err != nil {
		return Characteristics{}, err
	}
	props := b.fn.Props()
	ch := Characteristics{
		Ordered:      b.strm.Ordered,
		Commutative:  props.Commutative,
		Invertible:   props.Invertible,
		Kind:         props.Kind,
		StoresTuples: ag.StoresTuples(),
	}
	seen := map[stream.Measure]bool{}
	for _, w := range b.windows {
		def := w.make()
		ch.WindowSummary = append(ch.WindowSummary, w.String())
		if !seen[def.Measure()] {
			seen[def.Measure()] = true
			ch.Measures = append(ch.Measures, def.Measure())
		}
		if _, cf := def.(window.ContextFree); cf {
			ch.ContextFree++
		} else {
			ch.ContextAware++
		}
		if window.IsForwardContextAware(def) {
			ch.ForwardAware++
		}
		if window.IsSession(def) {
			ch.Sessions++
		}
	}
	return ch, nil
}
