package fat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// model is the naive reference: a plain slice folded on demand.
type model struct {
	leaves []string
}

func (m *model) insert(i int, s string) {
	m.leaves = append(m.leaves, "")
	copy(m.leaves[i+1:], m.leaves[i:])
	m.leaves[i] = s
}

func (m *model) remove(i int) { m.leaves = append(m.leaves[:i], m.leaves[i+1:]...) }

func (m *model) query(i, j int) string { return strings.Join(m.leaves[i:j], "") }

// concat is associative but NOT commutative — it catches any ordering bug in
// the tree's range queries.
func concat(a, b string) string { return a + b }

func TestTreeMatchesModelUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tree := New(concat, "")
	m := &model{}
	next := 'a'
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 4 || tree.Len() == 0: // push
			s := string(next)
			next++
			if next > 'z' {
				next = 'a'
			}
			tree.Push(s)
			m.leaves = append(m.leaves, s)
		case op < 6: // set
			i := rng.Intn(tree.Len())
			s := string(rune('A' + rng.Intn(26)))
			tree.Set(i, s)
			m.leaves[i] = s
		case op < 8: // insert
			i := rng.Intn(tree.Len() + 1)
			s := string(rune('0' + rng.Intn(10)))
			tree.Insert(i, s)
			m.insert(i, s)
		default: // remove
			i := rng.Intn(tree.Len())
			tree.Remove(i)
			m.remove(i)
		}
		if tree.Len() != len(m.leaves) {
			t.Fatalf("step %d: length %d want %d", step, tree.Len(), len(m.leaves))
		}
		if step%7 == 0 && tree.Len() > 0 {
			i := rng.Intn(tree.Len())
			j := i + rng.Intn(tree.Len()-i+1)
			if got, want := tree.Query(i, j), m.query(i, j); got != want {
				t.Fatalf("step %d: query(%d,%d)=%q want %q", step, i, j, got, want)
			}
		}
	}
	if got, want := tree.Aggregate(), m.query(0, len(m.leaves)); got != want {
		t.Fatalf("aggregate %q want %q", got, want)
	}
}

func TestRemoveFront(t *testing.T) {
	tree := New(concat, "")
	m := &model{}
	for i := 0; i < 100; i++ {
		s := string(rune('a' + i%26))
		tree.Push(s)
		m.leaves = append(m.leaves, s)
	}
	for _, k := range []int{1, 7, 30, 100} {
		tree.RemoveFront(k)
		if k > len(m.leaves) {
			k = len(m.leaves)
		}
		m.leaves = m.leaves[k:]
		if tree.Len() != len(m.leaves) {
			t.Fatalf("after RemoveFront(%d): len %d want %d", k, tree.Len(), len(m.leaves))
		}
		if got, want := tree.Query(0, tree.Len()), m.query(0, len(m.leaves)); got != want {
			t.Fatalf("after RemoveFront(%d): %q want %q", k, got, want)
		}
	}
}

// TestTreeMatchesModelWithRingEviction interleaves RemoveFront with every
// other operation so the logical→physical leaf translation (head offset),
// ring compaction, and shrinking are all exercised against the naive model.
func TestTreeMatchesModelWithRingEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree := New(concat, "")
	m := &model{}
	next := 'a'
	for step := 0; step < 8000; step++ {
		switch op := rng.Intn(12); {
		case op < 5 || tree.Len() == 0: // push
			s := string(next)
			next++
			if next > 'z' {
				next = 'a'
			}
			tree.Push(s)
			m.leaves = append(m.leaves, s)
		case op < 7: // evict a front run (the ring-head path)
			k := 1 + rng.Intn(tree.Len())
			tree.RemoveFront(k)
			m.leaves = m.leaves[k:]
		case op < 9: // set
			i := rng.Intn(tree.Len())
			s := string(rune('A' + rng.Intn(26)))
			tree.Set(i, s)
			m.leaves[i] = s
		case op < 11: // insert
			i := rng.Intn(tree.Len() + 1)
			s := string(rune('0' + rng.Intn(10)))
			tree.Insert(i, s)
			m.insert(i, s)
		default: // remove
			i := rng.Intn(tree.Len())
			tree.Remove(i)
			m.remove(i)
		}
		if tree.Len() != len(m.leaves) {
			t.Fatalf("step %d: length %d want %d", step, tree.Len(), len(m.leaves))
		}
		if tree.Len() > 0 {
			i := rng.Intn(tree.Len())
			if got, want := tree.Get(i), m.leaves[i]; got != want {
				t.Fatalf("step %d: get(%d)=%q want %q", step, i, got, want)
			}
		}
		if step%5 == 0 {
			i := 0
			if tree.Len() > 0 {
				i = rng.Intn(tree.Len())
			}
			j := i + rng.Intn(tree.Len()-i+1)
			if got, want := tree.Query(i, j), m.query(i, j); got != want {
				t.Fatalf("step %d: query(%d,%d)=%q want %q", step, i, j, got, want)
			}
			if got, want := tree.Aggregate(), m.query(0, len(m.leaves)); got != want {
				t.Fatalf("step %d: aggregate %q want %q", step, got, want)
			}
		}
	}
}

// TestRemoveFrontIsAmortizedO1 pushes and evicts in lockstep at a fixed
// window size and checks the combine count stays linear-ish in the number of
// operations — the old implementation rebuilt the whole suffix per eviction,
// which is quadratic overall and fails this bound by a wide margin.
func TestRemoveFrontIsAmortizedO1(t *testing.T) {
	tree := New(func(a, b int) int { return a + b }, 0)
	const window, ops = 256, 20000
	for i := 0; i < window; i++ {
		tree.Push(1)
	}
	base := tree.Combines()
	for i := 0; i < ops; i++ {
		tree.Push(1)
		tree.RemoveFront(1)
	}
	if tree.Len() != window {
		t.Fatalf("len=%d want %d", tree.Len(), window)
	}
	// Each push/evict pair costs O(log window) path updates plus amortized
	// compaction; 64 combines per pair is a generous linear bound that the
	// old O(window) per-evict rebuild (≈256/pair) cannot meet.
	perPair := float64(tree.Combines()-base) / ops
	if perPair > 64 {
		t.Fatalf("combines per push+evict pair = %.1f, want amortized O(log n) (<= 64)", perPair)
	}
}

func TestQueryEmptyRangeIsIdentity(t *testing.T) {
	tree := New(concat, "")
	tree.Push("x")
	if got := tree.Query(1, 1); got != "" {
		t.Fatalf("empty range: %q want identity", got)
	}
}

func TestShrinkAfterHeavyEviction(t *testing.T) {
	tree := New(func(a, b int) int { return a + b }, 0)
	for i := 0; i < 4096; i++ {
		tree.Push(1)
	}
	tree.RemoveFront(4090)
	if tree.Len() != 6 || tree.Aggregate() != 6 {
		t.Fatalf("after eviction: len=%d agg=%d", tree.Len(), tree.Aggregate())
	}
	if tree.capacity > 64 {
		t.Fatalf("capacity %d did not shrink", tree.capacity)
	}
}

func TestQuickSumAgainstFold(t *testing.T) {
	f := func(values []int8, cuts [2]uint8) bool {
		tree := New(func(a, b int64) int64 { return a + b }, 0)
		var want int64
		for _, v := range values {
			tree.Push(int64(v))
			want += int64(v)
		}
		if tree.Aggregate() != want {
			return false
		}
		if len(values) == 0 {
			return true
		}
		i := int(cuts[0]) % len(values)
		j := i + int(cuts[1])%(len(values)-i+1)
		var sub int64
		for _, v := range values[i:j] {
			sub += int64(v)
		}
		return tree.Query(i, j) == sub
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadIndexes(t *testing.T) {
	tree := New(concat, "")
	tree.Push("a")
	for name, fn := range map[string]func(){
		"get":    func() { tree.Get(1) },
		"set":    func() { tree.Set(-1, "x") },
		"remove": func() { tree.Remove(3) },
		"query":  func() { tree.Query(0, 2) },
		"insert": func() { tree.Insert(5, "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestDeadPrefixBoundedUnderPushEvict pins the two-threshold compaction
// policy documented on Push. Under push/evict lockstep: a full append leaves
// the dead prefix empty or under a quarter of the capacity, RemoveFront
// never leaves it at half or more, and the capacity stays bounded by a small
// multiple of the live leaf count (dead space is reclaimed, not grown
// around). The trailing evict-only drain checks the evict-side threshold
// holds with no append to bail it out.
func TestDeadPrefixBoundedUnderPushEvict(t *testing.T) {
	tr := New(func(a, b int) int { return a + b }, 0)
	const live = 50
	for i := 0; i < live; i++ {
		tr.Push(1)
	}
	for i := 0; i < 50_000; i++ {
		full := tr.head+tr.length == tr.capacity
		tr.Push(1)
		if full && tr.head != 0 && tr.head*4 >= tr.capacity {
			t.Fatalf("op %d: full append left dead prefix %d of capacity %d (>= 1/4)",
				i, tr.head, tr.capacity)
		}
		tr.RemoveFront(1)
		if tr.head*2 >= tr.capacity {
			t.Fatalf("op %d: RemoveFront left dead prefix %d of capacity %d (>= 1/2)",
				i, tr.head, tr.capacity)
		}
		if tr.capacity > 16*live {
			t.Fatalf("op %d: capacity %d unbounded for %d live leaves", i, tr.capacity, live)
		}
		if got := tr.Aggregate(); got != live {
			t.Fatalf("op %d: aggregate %d, want %d", i, got, live)
		}
	}
	for tr.Len() > 0 {
		tr.RemoveFront(1)
		if tr.capacity > 1 && tr.head*2 >= tr.capacity {
			t.Fatalf("drain: dead prefix %d of capacity %d (>= 1/2)", tr.head, tr.capacity)
		}
	}
}
