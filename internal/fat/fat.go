// Package fat implements FlatFAT (Tangwongsan et al., "General incremental
// sliding-window aggregation", PVLDB 2015): a flat, array-backed complete
// binary tree of partial aggregates. Leaves hold per-element partial
// aggregates; inner nodes hold the combination of their children. Updating a
// leaf costs O(log n); an ordered range query costs O(log n); inserting or
// removing a leaf in the middle costs O(n) because the suffix of leaves must
// shift — this is exactly the cost the paper charges to aggregate trees when
// out-of-order tuples arrive (§3.2, §6.2.2).
//
// The tree only requires the combine operation to be associative. Range
// queries combine strictly left to right, so non-commutative functions are
// aggregated in leaf order.
package fat

// Tree is a flat aggregate tree over partial aggregates of type A.
//
// The zero value is not usable; construct trees with New.
type Tree[A any] struct {
	combine  func(a, b A) A
	identity A
	capacity int // leaf capacity; always a power of two, >= 1
	head     int // physical index of logical leaf 0 (ring head; see RemoveFront)
	length   int // leaves in use
	nodes    []A // 1-based heap layout; leaves occupy [capacity+head, capacity+head+length)
	// combines counts combine invocations; the benchmark harness uses it
	// to attribute aggregation work.
	combines int64
}

// New returns an empty tree. combine must be associative; identity must be a
// two-sided identity of combine (combine(identity, x) == combine(x, identity)
// == x), used to pad unused leaves.
func New[A any](combine func(a, b A) A, identity A) *Tree[A] {
	t := &Tree[A]{combine: combine, identity: identity}
	t.reset(1)
	return t
}

func (t *Tree[A]) reset(capacity int) {
	t.capacity = capacity
	t.head = 0
	t.nodes = make([]A, 2*capacity)
	for i := range t.nodes {
		t.nodes[i] = t.identity
	}
}

// Len returns the number of leaves in use.
func (t *Tree[A]) Len() int { return t.length }

// Combines returns the number of combine invocations performed so far.
func (t *Tree[A]) Combines() int64 { return t.combines }

func (t *Tree[A]) comb(a, b A) A {
	t.combines++
	return t.combine(a, b)
}

// Get returns the i-th leaf value.
func (t *Tree[A]) Get(i int) A {
	if i < 0 || i >= t.length {
		panic("fat: leaf index out of range")
	}
	return t.nodes[t.capacity+t.head+i]
}

// Set replaces the i-th leaf and updates the path to the root in O(log n).
//
//slicelint:hotpath
func (t *Tree[A]) Set(i int, a A) {
	if i < 0 || i >= t.length {
		panic("fat: leaf index out of range")
	}
	t.setLeaf(t.capacity+t.head+i, a)
}

// setLeaf writes the physical leaf node p and refreshes its root path.
func (t *Tree[A]) setLeaf(p int, a A) {
	t.nodes[p] = a
	for p >>= 1; p >= 1; p >>= 1 {
		t.nodes[p] = t.comb(t.nodes[2*p], t.nodes[2*p+1])
	}
}

// Push appends a leaf at the end, compacting the ring or growing the tree
// when the physical leaf space is exhausted.
//
// Compaction policy (FlatFAT leaf ring) — two thresholds, both intentional:
//
//   - Append side (here and Insert), threshold one quarter: an append that
//     finds the leaf space full reclaims the dead prefix when it is at
//     least capacity/4 (the compaction then frees >= capacity/4 slots,
//     amortizing its O(capacity) rebuild over the appends that refill
//     them) and doubles the capacity otherwise — the same append-time rule
//     as the core slice ring (core/store.reserveSpace).
//   - Evict side (RemoveFront), threshold one half: unlike the core ring,
//     eviction also compacts once the dead prefix reaches capacity/2. Dead
//     leaves are not nil pointers — they hold identity aggregates in the
//     node array and keep the capacity (hence every O(capacity) rebuild,
//     compaction, and the 2*capacity node footprint) inflated — so an
//     evict-heavy phase with no appends must bound them itself. The higher
//     threshold keeps the eviction amortization sound: each compaction
//     frees >= capacity/2 slots that took >= capacity/2 evictions to
//     create.
//
// Invariant (tested in TestDeadPrefixBoundedUnderPushEvict): after any
// RemoveFront the dead prefix is below half the capacity, and under
// push/evict lockstep the capacity stays bounded by a small constant times
// the live leaf count.
//
//slicelint:hotpath
func (t *Tree[A]) Push(a A) {
	if t.head+t.length == t.capacity {
		if t.head*4 >= t.capacity {
			// Enough dead space at the front: reclaim it instead of
			// growing (amortized — at least capacity/4 slots come free).
			t.compact(t.capacity)
		} else {
			t.grow()
		}
	}
	t.length++
	t.Set(t.length-1, a)
}

// Insert places a new leaf at index i, shifting subsequent leaves right.
// This is the O(n) operation triggered by out-of-order arrivals in
// tuple-based aggregate trees.
func (t *Tree[A]) Insert(i int, a A) {
	if i < 0 || i > t.length {
		panic("fat: insert index out of range")
	}
	if i == t.length {
		t.Push(a)
		return
	}
	if t.head+t.length == t.capacity {
		if t.head*4 >= t.capacity {
			t.compact(t.capacity)
		} else {
			t.grow()
		}
	}
	leaves := t.nodes[t.capacity+t.head : t.capacity+t.head+t.length+1]
	copy(leaves[i+1:], leaves[i:t.length])
	leaves[i] = a
	t.length++
	t.rebuildFrom(t.head + i)
}

// Remove deletes the leaf at index i, shifting subsequent leaves left (O(n)).
func (t *Tree[A]) Remove(i int) {
	if i < 0 || i >= t.length {
		panic("fat: remove index out of range")
	}
	leaves := t.nodes[t.capacity+t.head : t.capacity+t.head+t.length]
	copy(leaves[i:], leaves[i+1:])
	t.length--
	leaves[t.length] = t.identity
	t.rebuildFrom(t.head + i)
}

// RemoveFront evicts the first k leaves (window expiry) by advancing the
// ring head: each evicted leaf is reset to the identity with one O(log n)
// path update, so steady-state eviction costs O(k log n) instead of the
// previous O(capacity) suffix rebuild. The dead prefix is compacted away
// once it reaches half the leaf capacity — the evict-side half of the
// two-threshold policy documented on Push (the append side reclaims at a
// quarter; the divergence is intentional and explained there).
//
//slicelint:hotpath
func (t *Tree[A]) RemoveFront(k int) {
	if k <= 0 {
		return
	}
	if k > t.length {
		k = t.length
	}
	for j := 0; j < k; j++ {
		t.setLeaf(t.capacity+t.head+j, t.identity)
	}
	t.head += k
	t.length -= k
	if t.head*2 >= t.capacity {
		t.compact(t.capacity)
	}
	t.maybeShrink()
}

// Query aggregates the leaves in [i, j) from left to right in O(log n)
// combine steps. An empty range returns the identity.
func (t *Tree[A]) Query(i, j int) A {
	if i < 0 || j > t.length || i > j {
		panic("fat: query range out of bounds")
	}
	resL, resR := t.identity, t.identity
	l, r := t.capacity+t.head+i, t.capacity+t.head+j
	for l < r {
		if l&1 == 1 {
			resL = t.comb(resL, t.nodes[l])
			l++
		}
		if r&1 == 1 {
			r--
			resR = t.comb(t.nodes[r], resR)
		}
		l >>= 1
		r >>= 1
	}
	return t.comb(resL, resR)
}

// Aggregate returns the combination of all leaves (the root).
func (t *Tree[A]) Aggregate() A {
	if t.length == 0 {
		return t.identity
	}
	return t.nodes[1]
}

// grow doubles the leaf capacity and rebuilds in O(n). Live leaves move to
// the front (head resets to zero).
//
//slicelint:coldpath capacity doubling is amortized O(1) per push; the rebuild allocation is the point
func (t *Tree[A]) grow() {
	t.compact(t.capacity * 2)
}

// compact rebuilds the tree at the given capacity with the live leaves moved
// to the front (head = 0). O(capacity).
//
//slicelint:coldpath compaction runs when the dead prefix dominates; its O(capacity) cost and scratch buffer amortize over the evictions that created the dead space
func (t *Tree[A]) compact(capacity int) {
	saved := make([]A, t.length)
	copy(saved, t.nodes[t.capacity+t.head:t.capacity+t.head+t.length])
	n := t.length
	t.reset(capacity)
	t.length = n
	copy(t.nodes[t.capacity:], saved)
	t.rebuildFrom(0)
}

// maybeShrink reduces the capacity when occupancy drops below a quarter,
// bounding memory after large evictions.
//
//slicelint:coldpath shrinking runs only after occupancy collapses below a quarter; the rebuild amortizes over the evictions
func (t *Tree[A]) maybeShrink() {
	if t.capacity <= 1 || t.length > t.capacity/4 {
		return
	}
	capacity := t.capacity
	for capacity > 1 && t.length <= capacity/4 {
		capacity /= 2
	}
	t.compact(capacity)
}

// rebuildFrom recomputes all inner nodes that cover physical leaf offsets
// >= i (i is relative to the leaf level, i.e. head-inclusive). Shifting
// operations (Insert, Remove) dirty an arbitrary suffix of the leaf level,
// so the whole suffix of every inner level is refreshed; the cost is
// O(capacity - i).
func (t *Tree[A]) rebuildFrom(i int) {
	lo := t.capacity + i
	hi := 2 * t.capacity
	for lo > 1 {
		lo >>= 1
		hi >>= 1
		for p := lo; p < hi; p++ {
			t.nodes[p] = t.comb(t.nodes[2*p], t.nodes[2*p+1])
		}
	}
}
