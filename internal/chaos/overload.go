package chaos

// Overload harness: drives the engine's backpressure policies, sink guard,
// and dead-letter queue through sustained overload and sink failure, and
// checks the one invariant every technique must keep:
//
//	events_in == events_processed + events_dropped + events_dead_lettered
//
// Three techniques model the failure shapes the ops layer exists for:
//
//   - slow-sink: the sink stays healthy but slow, so partition queues run
//     full for the whole stream. Block must stall losslessly; the dropping
//     policies must bound resident queue memory and account every drop.
//   - flapping-sink: the sink rejects a contiguous window of deliveries,
//     tripping the circuit breaker, then heals so the half-open probe
//     recovers it. Rejected batches are dead-lettered durably.
//   - overload-burst: the source outruns a moderately slow sink, building
//     exactly the occupancy ramp ops.Shed is designed to flatten.

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"scotty/internal/benchutil"
	"scotty/internal/engine"
	"scotty/internal/obs"
	"scotty/internal/ops"
	"scotty/internal/stream"
)

// OverloadTechnique selects one overload failure shape.
type OverloadTechnique string

const (
	// SlowSinkStall keeps the sink healthy but slow (150us per batch), so
	// the tightly capped partition queues are saturated for the whole run.
	SlowSinkStall OverloadTechnique = "slow-sink"
	// FlappingSink rejects deliveries 40..43 of every partition, tripping
	// the circuit breaker; later deliveries succeed, so the half-open probe
	// must close it again. Requires a DLQDir.
	FlappingSink OverloadTechnique = "flapping-sink"
	// OverloadBurst lets the pre-generated source outrun a moderately slow
	// sink (60us per batch), ramping queue occupancy through ops.Shed's
	// low-water mark.
	OverloadBurst OverloadTechnique = "overload-burst"
)

// OverloadTechniques returns every overload technique, for table tests.
func OverloadTechniques() []OverloadTechnique {
	return []OverloadTechnique{SlowSinkStall, FlappingSink, OverloadBurst}
}

const (
	slowSinkDelay  = 150 * time.Microsecond
	burstSinkDelay = 60 * time.Microsecond
	// dlqPaceDelay slows each dead-letter append so the open breaker's
	// fast-fail drain cannot burn through the remaining stream before the
	// cooldown elapses — without it the recovery probe would race stream
	// exhaustion.
	dlqPaceDelay = 50 * time.Microsecond
	// flapFailFrom..flapFailTo-1 are the per-partition Deliver calls the
	// flapping sink rejects: ~25% into the stream, leaving plenty of
	// healthy tail for the breaker to recover into.
	flapFailFrom = 40
	flapFailTo   = 44
)

// OverloadOptions configures one overload run. Zero values select defaults
// chosen so the default run genuinely overloads: the queue bound
// (QueueLen x BatchSize = 256 items) is far below what a 150us/batch sink
// sustains against a pre-generated source.
type OverloadOptions struct {
	Technique OverloadTechnique
	Policy    ops.Policy // backpressure policy under test (ops.Block zero value)
	Events    int        // data tuples to generate; 0 selects 20000
	Par       int        // partitions; 0 selects 2
	Seed      int64      // generator / disorder seed
	QueueLen  int        // edge capacity in batches; 0 selects a tight 4
	BatchSize int        // items per batch; 0 selects 64
	// DLQDir captures dead-lettered batches durably (one file per
	// partition, read back into the result). Required for FlappingSink.
	DLQDir string
	// Metrics, when non-nil, receives the engine's drop/shed counters,
	// breaker gauges, and retry histograms.
	Metrics *obs.Registry
}

// OverloadResult is the observable outcome of an overload run. Breaker trips
// and recoveries are inside Stats; the DLQ fields are read back from the
// DLQDir files after the run, so asserting DLQEvents == Stats.DeadLettered
// proves the durable capture matched the accounting.
type OverloadResult struct {
	Stats      engine.Stats
	Log        *Log
	DLQRecords int   // framed records across all partition DLQ files
	DLQEvents  int64 // sum of the records' event counts
}

// RunOverload executes one overload technique under one backpressure policy
// and returns what an external observer saw. The run is clean (no crash
// schedule, no checkpointing — the dropping policies are incompatible with
// checkpointing by design) over the lazy-slicing operator; overload behavior
// is a property of the edges and the sink guard, not of the windowing
// technique.
func RunOverload(o OverloadOptions) (OverloadResult, error) {
	if o.Events == 0 {
		o.Events = 20000
	}
	if o.Par == 0 {
		o.Par = 2
	}
	if o.QueueLen == 0 {
		o.QueueLen = 4
	}
	if o.BatchSize == 0 {
		o.BatchSize = 64
	}
	if o.Technique == FlappingSink && o.DLQDir == "" {
		return OverloadResult{}, fmt.Errorf("chaos: %s requires a DLQDir: rejected batches must be captured durably", o.Technique)
	}
	sink, err := overloadSink(o)
	if err != nil {
		return OverloadResult{}, err
	}

	tq := benchutil.LazySlicing
	if _, err := buildOperator(tq, "", nil); err != nil {
		return OverloadResult{}, err
	}
	d := stream.Disorder{Fraction: 0.1, MaxDelay: 1000, Seed: o.Seed}
	if tq.InOrderOnly() {
		d = stream.Disorder{}
	}
	in := benchutil.MakeInput(stream.Machine(), o.Events, d, o.Seed)

	log := NewLog(o.Par)
	crash := newCrashState(nil)
	cfg := engine.Config[stream.Tuple]{
		Parallelism: o.Par,
		Key:         func(e stream.Event[stream.Tuple]) uint64 { return uint64(e.Value.Key) },
		NewProcessor: func(p int) engine.Processor[stream.Tuple] {
			//lint:ignore errflow the technique was validated by buildOperator before the run started; rebuilding it for a partition cannot fail differently
			op, _ := buildOperator(tq, "", nil) // validated above
			return &proc{part: p, op: op, log: log, crash: crash}
		},
		BatchSize:    o.BatchSize,
		QueueLen:     o.QueueLen,
		Backpressure: o.Policy,
		Sink:         sink,
		Metrics:      o.Metrics,
	}
	stats, err := engine.Run(cfg, in.Items)
	if err != nil {
		return OverloadResult{}, err
	}
	res := OverloadResult{Stats: stats, Log: log}
	if o.DLQDir != "" {
		for p := 0; p < o.Par; p++ {
			recs, err := ops.ReadDLQ(engine.DLQFile(o.DLQDir, p))
			if err != nil {
				return OverloadResult{}, fmt.Errorf("chaos: reading partition %d DLQ: %w", p, err)
			}
			res.DLQRecords += len(recs)
			for _, r := range recs {
				res.DLQEvents += int64(r.Count)
			}
		}
	}
	return res, nil
}

// overloadSink builds the SinkConfig that realizes one overload technique.
func overloadSink(o OverloadOptions) (*engine.SinkConfig[stream.Tuple], error) {
	sleepSink := func(d time.Duration) *engine.SinkConfig[stream.Tuple] {
		return &engine.SinkConfig[stream.Tuple]{
			Deliver: func(int, []stream.Item[stream.Tuple]) error {
				time.Sleep(d)
				return nil
			},
			DLQDir: o.DLQDir,
		}
	}
	switch o.Technique {
	case SlowSinkStall:
		return sleepSink(slowSinkDelay), nil
	case OverloadBurst:
		return sleepSink(burstSinkDelay), nil
	case FlappingSink:
		calls := make([]atomic.Int64, o.Par)
		return &engine.SinkConfig[stream.Tuple]{
			Deliver: func(p int, items []stream.Item[stream.Tuple]) error {
				n := calls[p].Add(1)
				if n >= flapFailFrom && n < flapFailTo {
					return fmt.Errorf("chaos: flapping sink rejecting delivery %d of partition %d", n, p)
				}
				return nil
			},
			// Two fast attempts per batch and a 3-failure trip: the
			// 4-call failure window guarantees a trip, and the healthy
			// tail guarantees the post-cooldown probe recovers.
			Retry:   ops.RetryConfig{MaxAttempts: 2, Sleep: func(time.Duration) {}},
			Breaker: ops.BreakerConfig{Threshold: 3, Cooldown: 300 * time.Microsecond},
			Encode: func(items []stream.Item[stream.Tuple]) ([]byte, error) {
				time.Sleep(dlqPaceDelay)
				return json.Marshal(items)
			},
			DLQDir: o.DLQDir,
		}, nil
	}
	return nil, fmt.Errorf("chaos: unknown overload technique %q", o.Technique)
}
