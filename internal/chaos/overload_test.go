package chaos

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"scotty/internal/benchutil"
	"scotty/internal/obs"
	"scotty/internal/ops"
	"scotty/internal/stream"
)

// overloadPolicies is the full backpressure matrix every overload technique
// runs under.
var overloadPolicies = []ops.Policy{ops.Block, ops.DropOldest, ops.DropNewest, ops.Shed}

// TestOverloadMatrix drives every overload technique under every
// backpressure policy and checks the harness's core claims: the
// no-silent-loss invariant holds in every cell, resident queue memory stays
// within the configured bound, Block never drops, the dropping policies
// actually drop under sustained pressure, and the flapping sink's breaker
// demonstrably trips AND recovers with every rejected batch captured in the
// DLQ.
func TestOverloadMatrix(t *testing.T) {
	for _, tech := range OverloadTechniques() {
		for _, pol := range overloadPolicies {
			tech, pol := tech, pol
			t.Run(fmt.Sprintf("%s/%s", tech, pol), func(t *testing.T) {
				t.Parallel()
				reg := obs.NewRegistry()
				o := OverloadOptions{
					Technique: tech,
					Policy:    pol,
					Seed:      7,
					DLQDir:    t.TempDir(),
					Metrics:   reg,
				}
				res, err := RunOverload(o)
				if err != nil {
					t.Fatalf("overload run: %v", err)
				}
				s := res.Stats

				// The invariant, in every cell of the matrix.
				if err := s.AccountingError(); err != nil {
					t.Fatalf("accounting: %v", err)
				}
				if s.EventsIn == 0 || s.Results == 0 {
					t.Fatalf("run proved nothing: EventsIn=%d Results=%d", s.EventsIn, s.Results)
				}

				// Bounded resident queue memory, witnessed by the engine's
				// per-edge high-water mark (QueueLen defaulted to 4).
				if s.MaxQueueLen > 4 {
					t.Fatalf("queue high-water %d exceeds configured bound 4", s.MaxQueueLen)
				}

				// Durable capture must match the accounting exactly.
				if res.DLQEvents != s.DeadLettered {
					t.Fatalf("DLQ captured %d events, stats dead-lettered %d", res.DLQEvents, s.DeadLettered)
				}

				// Per-policy drop semantics.
				if pol == ops.Block {
					if s.Dropped != 0 {
						t.Fatalf("Block dropped %d events", s.Dropped)
					}
					if s.Events+s.DeadLettered != s.EventsIn {
						t.Fatalf("Block lost events: in=%d processed=%d dead=%d", s.EventsIn, s.Events, s.DeadLettered)
					}
				} else if tech != FlappingSink && s.Dropped == 0 {
					// The slow and bursty sinks saturate the tight queues
					// for the whole run; a dropping policy that never
					// dropped was not actually exercised. (The flapping
					// sink is fast when healthy, so no drop claim there.)
					t.Fatalf("%s dropped nothing under sustained overload", pol)
				}
				if dropMetric := metricTotal(reg, "engine_events_dropped_total"); dropMetric != s.Dropped {
					t.Fatalf("engine_events_dropped_total=%d, Stats.Dropped=%d", dropMetric, s.Dropped)
				}

				// Breaker lifecycle under the flapping sink: it must trip
				// on the failure window and recover into the healthy tail.
				if tech == FlappingSink {
					if s.BreakerTrips == 0 {
						t.Fatalf("flapping sink never tripped the breaker")
					}
					if s.BreakerRecoveries == 0 {
						t.Fatalf("breaker tripped %d times but never recovered", s.BreakerTrips)
					}
					if s.DeadLettered == 0 || res.DLQRecords == 0 {
						t.Fatalf("flapping sink dead-lettered nothing (stats=%d, records=%d)", s.DeadLettered, res.DLQRecords)
					}
				} else {
					if s.DeadLettered != 0 || s.BreakerTrips != 0 {
						t.Fatalf("healthy sink dead-lettered %d / tripped %d", s.DeadLettered, s.BreakerTrips)
					}
				}
			})
		}
	}
}

// metricTotal sums one counter name across all labeled series in reg.
func metricTotal(reg *obs.Registry, name string) int64 {
	var total int64
	for _, s := range reg.Snapshot() {
		if s.Value != nil && (s.Name == name || strings.HasPrefix(s.Name, name+"{")) {
			total += *s.Value
		}
	}
	return total
}

// sequentialOracle replays the exact engine input through one single-threaded
// operator per partition, mirroring the engine's routing contract (equal keys
// mod partition count; watermarks broadcast in stream order). Its log is what
// any correct engine configuration that loses nothing must produce.
func sequentialOracle(t *testing.T, tq benchutil.Technique, items []stream.Item[stream.Tuple], par int) *Log {
	t.Helper()
	procs := make([]operator, par)
	for p := range procs {
		op, err := buildOperator(tq, "", nil)
		if err != nil {
			t.Fatalf("oracle operator: %v", err)
		}
		procs[p] = op
	}
	log := NewLog(par)
	for _, it := range items {
		if it.Kind != stream.KindEvent {
			for p, op := range procs {
				for _, ln := range op.feed(it) {
					log.append(p, ln)
				}
			}
			continue
		}
		p := int(uint64(it.Event.Value.Key) % uint64(par))
		for _, ln := range procs[p].feed(it) {
			log.append(p, ln)
		}
	}
	return log
}

// TestBlockEquivalentToSequentialOracle is the refactor's identity proof:
// the ops-edged engine under the default Block policy emits, per partition,
// byte-identical results to a sequential oracle with no engine at all —
// across slicing techniques, a keyed operator, and a baseline.
func TestBlockEquivalentToSequentialOracle(t *testing.T) {
	techs := []benchutil.Technique{
		benchutil.LazySlicing,
		benchutil.EagerSlicing,
		benchutil.DABASlicing,
		benchutil.Buckets,
		Keyed,
	}
	for _, tq := range techs {
		tq := tq
		t.Run(string(tq), func(t *testing.T) {
			t.Parallel()
			const events, par, seed = 6000, 3, 11
			got, err := Run(Options{Technique: tq, Events: events, Par: par, Seed: seed})
			if err != nil {
				t.Fatalf("engine run: %v", err)
			}
			d := stream.Disorder{Fraction: 0.1, MaxDelay: 1000, Seed: seed}
			if tq.InOrderOnly() {
				d = stream.Disorder{}
			}
			in := benchutil.MakeInput(stream.Machine(), events, d, seed)
			want := sequentialOracle(t, tq, in.Items, par)
			for p := 0; p < par; p++ {
				if w, g := want.Partition(p), got.Log.Partition(p); !reflect.DeepEqual(w, g) {
					t.Fatalf("partition %d diverged from oracle: engine %d lines, oracle %d lines\nengine: %.3q\noracle: %.3q", p, len(g), len(w), g, w)
				}
			}
		})
	}
}

// TestDropPoliciesIdentityWithoutPressure pins the other side of the policy
// contract: when the queue bound is far above what the run needs, DropOldest,
// DropNewest, and Shed never engage, and their output is byte-identical to
// Block's — the policies are strictly overload behaviors, not semantic
// changes.
func TestDropPoliciesIdentityWithoutPressure(t *testing.T) {
	base := OverloadOptions{
		Technique: OverloadBurst,
		Events:    8000,
		Seed:      3,
		QueueLen:  4096,
	}
	clean, err := RunOverload(base) // Policy zero value is ops.Block
	if err != nil {
		t.Fatalf("block run: %v", err)
	}
	for _, pol := range []ops.Policy{ops.DropOldest, ops.DropNewest, ops.Shed} {
		o := base
		o.Policy = pol
		got, err := RunOverload(o)
		if err != nil {
			t.Fatalf("%s run: %v", pol, err)
		}
		if got.Stats.Dropped != 0 {
			t.Fatalf("%s dropped %d events with a 4096-batch queue", pol, got.Stats.Dropped)
		}
		if got.Stats.Events != clean.Stats.Events || got.Stats.Results != clean.Stats.Results {
			t.Fatalf("%s stats diverged: events %d vs %d, results %d vs %d",
				pol, got.Stats.Events, clean.Stats.Events, got.Stats.Results, clean.Stats.Results)
		}
		for p := 0; p < got.Log.Partitions(); p++ {
			if !reflect.DeepEqual(clean.Log.Partition(p), got.Log.Partition(p)) {
				t.Fatalf("%s partition %d output diverged from Block", pol, p)
			}
		}
	}
}
