// Package chaos is the fault-injection harness for the engine's
// checkpoint/recovery layer (docs/ROBUSTNESS.md). It drives every windowing
// technique of the benchmark harness — plus the keyed operator — through the
// parallel engine while injecting a deterministic, seeded schedule of faults:
// panics at fixed tuple positions, torn snapshot files, and dropped or
// duplicated checkpoint barriers. A run under faults must emit exactly the
// results of an uninterrupted run; Equivalent checks that, per partition and
// byte for byte.
//
// The harness is deliberately deterministic: the same seed always yields the
// same stream, the same fault schedule, and therefore the same verdict, so a
// failure reproduces with `-run <test> -v` and nothing else.
package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scotty/internal/aggregate"
	"scotty/internal/baselines"
	"scotty/internal/benchutil"
	"scotty/internal/checkpoint"
	"scotty/internal/core"
	"scotty/internal/engine"
	"scotty/internal/fleet"
	"scotty/internal/obs"
	"scotty/internal/spill"
	"scotty/internal/stream"
	"scotty/internal/window"
)

// Keyed names the per-key operator (core.Keyed) as an additional technique
// beyond benchutil.AllTechniques.
const Keyed = benchutil.Technique("keyed")

// KeyedTTL is the keyed operator with idle-key expiry: the Machine profile's
// global 1500ms gaps leave keys idle for up to ~370ms of watermark time (the
// 1001ms watermark lag swallows most of the gap), enough for several keys per
// run to be drained, deleted, and later re-materialized seeded at the current
// watermark. Recovery must reproduce the expiry drains and the re-creations
// exactly.
const KeyedTTL = benchutil.Technique("keyed-ttl")

// KeyedSpill is the keyed operator under a deliberately tiny memory budget:
// every watermark spills most keys cold and the next tuples re-hydrate them,
// so crashes land between spill bursts and re-loads. Recovery restores from
// self-contained snapshots (cold blobs are inlined) and clears the stale
// spill directory — the results must not show any of it.
const KeyedSpill = benchutil.Technique("keyed-spill")

// keyedTTL and keyedLateness configure the keyed-ttl workload. Expiry fires
// when wm - lastSeen > ttl + lateness, and the largest idle span the Machine
// stream exposes is ~370ms (post-gap watermark jumps), so the sum must stay
// under that. The lateness can shrink safely: the watermark lag (1001ms)
// exceeds the disorder's max delay, so nothing is ever dropped as late.
const (
	keyedTTL      = int64(100)
	keyedLateness = int64(100)
)

// keyedSpillBudget is the per-partition byte budget for keyed-spill: far
// below what four Machine keys occupy, forcing spill/re-hydrate churn at
// every watermark.
const keyedSpillBudget = int64(8 << 10)

// Techniques lists everything the harness can run: all benchmark techniques
// plus the keyed operator (plain, idle-expiring, and spilling) and the
// factor-window sharing layer.
func Techniques() []benchutil.Technique {
	return append(append([]benchutil.Technique{}, benchutil.AllTechniques...),
		Keyed, KeyedTTL, KeyedSpill, benchutil.FleetSlicing)
}

// ------------------------------------------------------------- schedule ----

// BarrierMode selects how checkpoint barriers are tampered with.
type BarrierMode int

const (
	// BarriersClean delivers every barrier normally.
	BarriersClean BarrierMode = iota
	// BarriersDropped withholds every other barrier from one partition, so
	// those checkpoints never complete and recovery must fall back.
	BarriersDropped
	// BarriersDuplicated delivers every barrier twice to every partition;
	// alignment must be idempotent.
	BarriersDuplicated
)

// CrashPoint kills one partition when it has processed its At-th tuple
// (counted from the stream origin, surviving restores).
type CrashPoint struct {
	Partition int
	At        int64
}

// Schedule is a deterministic fault plan.
type Schedule struct {
	Crashes  []CrashPoint
	TornEven bool // tear every even-id snapshot file on disk
	Barriers BarrierMode
}

// NewSchedule derives a schedule with three crash points from the seed,
// spread across the middle of the run so checkpoints exist both before and
// after each kill. events is the total tuple count, par the parallelism.
func NewSchedule(seed int64, par, events int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	per := events / par
	crashes := make([]CrashPoint, 3)
	for i := range crashes {
		// Points land in the i-th of three bands covering [12%, 72%] of one
		// partition's share of the stream.
		lo := per * (1 + 5*i) / 25
		crashes[i] = CrashPoint{
			Partition: rng.Intn(par),
			At:        int64(lo + rng.Intn(per/5+1)),
		}
	}
	return Schedule{Crashes: crashes}
}

// crashState tracks which crash points have fired. Points fire exactly once
// across all restart attempts — recovery replays the stream, and a fault that
// re-fires forever would make every run diverge.
type crashState struct {
	points   []CrashPoint
	fired    []atomic.Bool
	Restores atomic.Int64 // successful snapshot restores across the run
}

func newCrashState(points []CrashPoint) *crashState {
	return &crashState{points: points, fired: make([]atomic.Bool, len(points))}
}

func (c *crashState) shouldPanic(part int, seen int64) bool {
	for i, pt := range c.points {
		if pt.Partition == part && pt.At == seen && c.fired[i].CompareAndSwap(false, true) {
			return true
		}
	}
	return false
}

// ------------------------------------------------------------------ log ----

// Log collects the externally visible results of a run, one sequence per
// partition. Within a partition emission order is deterministic; across
// partitions it is not, which is why the log never interleaves them.
type Log struct {
	mu    sync.Mutex
	lines [][]string
}

// NewLog creates a log for par partitions.
func NewLog(par int) *Log { return &Log{lines: make([][]string, par)} }

func (l *Log) append(part int, line string) {
	l.mu.Lock()
	l.lines[part] = append(l.lines[part], line)
	l.mu.Unlock()
}

// Partition returns one partition's result lines in emission order.
func (l *Log) Partition(p int) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.lines[p]...)
}

// Partitions returns the number of partitions the log covers.
func (l *Log) Partitions() int { return len(l.lines) }

// ------------------------------------------------------------ operators ----

// operator adapts one windowing technique: feed an item, get the formatted
// result lines it emitted.
type operator interface {
	feed(it stream.Item[stream.Tuple]) []string
}

// snapOperator additionally exposes the technique's snapshot support.
type snapOperator interface {
	operator
	snapshot() ([]byte, error)
	restore(data []byte) error
}

func formatResult(q int, start, end int64, value float64, n int64, update bool) string {
	return fmt.Sprintf("q%d [%d,%d) n=%d v=%.9g u=%t", q, start, end, n, value, update)
}

// sliceOp wraps the slicing core (any store kind); it is snapshottable.
type sliceOp struct {
	ag *core.Aggregator[stream.Tuple, float64, float64]
}

func (o *sliceOp) feed(it stream.Item[stream.Tuple]) []string {
	var rs []core.Result[float64]
	if it.Kind == stream.KindEvent {
		rs = o.ag.ProcessElement(it.Event)
	} else {
		rs = o.ag.ProcessWatermark(it.Watermark)
	}
	lines := make([]string, len(rs))
	for i, r := range rs {
		lines[i] = formatResult(r.Query, r.Start, r.End, r.Value, r.N, r.Update)
	}
	return lines
}

func (o *sliceOp) snapshot() ([]byte, error) { return o.ag.Snapshot() }
func (o *sliceOp) restore(data []byte) error { return o.ag.Restore(data) }

// keyedOp wraps the per-key operator; it is snapshottable.
type keyedOp struct {
	op *core.Keyed[int32, stream.Tuple, float64, float64]
}

func (o *keyedOp) feed(it stream.Item[stream.Tuple]) []string {
	var rs []core.KeyedResult[int32, float64]
	if it.Kind == stream.KindEvent {
		rs = o.op.ProcessElement(it.Event)
	} else {
		rs = o.op.ProcessWatermark(it.Watermark)
	}
	lines := make([]string, len(rs))
	for i, r := range rs {
		lines[i] = fmt.Sprintf("k%d %s", r.Key, formatResult(r.Query, r.Start, r.End, r.Value, r.N, r.Update))
	}
	return lines
}

func (o *keyedOp) snapshot() ([]byte, error) { return o.op.Snapshot() }
func (o *keyedOp) restore(data []byte) error { return o.op.Restore(data) }

// fleetOp wraps the factor-window sharing layer; it is snapshottable, and its
// workload is built to actually factor (correlated sliding queries plus an
// exact duplicate), so recovery must reconstruct pane rings, factored trigger
// cursors, and the logical fan-out — not just core slices.
type fleetOp struct {
	fl *fleet.Fleet[stream.Tuple, float64, float64]
}

func (o *fleetOp) feed(it stream.Item[stream.Tuple]) []string {
	var rs []core.Result[float64]
	if it.Kind == stream.KindEvent {
		rs = o.fl.ProcessElement(it.Event)
	} else {
		rs = o.fl.ProcessWatermark(it.Watermark)
	}
	lines := make([]string, len(rs))
	for i, r := range rs {
		lines[i] = formatResult(r.Query, r.Start, r.End, r.Value, r.N, r.Update)
	}
	return lines
}

func (o *fleetOp) snapshot() ([]byte, error) { return o.fl.Snapshot() }
func (o *fleetOp) restore(data []byte) error { return o.fl.Restore(data) }

// baseOp wraps a baseline technique; baselines carry no snapshot support, so
// the engine recovers them by replaying from the stream origin.
type baseOp struct {
	op baselines.Operator[stream.Tuple, float64]
}

func (o *baseOp) feed(it stream.Item[stream.Tuple]) []string {
	var rs []baselines.Result[float64]
	if it.Kind == stream.KindEvent {
		rs = o.op.ProcessElement(it.Event)
	} else {
		rs = o.op.ProcessWatermark(it.Watermark)
	}
	lines := make([]string, len(rs))
	for i, r := range rs {
		lines[i] = formatResult(r.Query, r.Start, r.End, r.Value, r.N, r.Update)
	}
	return lines
}

// buildOperator constructs the operator for one technique over the shared
// workload: sum aggregation, five tumbling queries, 4s lateness for the
// techniques that tolerate disorder. spillDir and reg are used only by
// KeyedSpill (the partition's blob directory and the run-wide metrics
// registry its counters aggregate into).
func buildOperator(t benchutil.Technique, spillDir string, reg *obs.Registry) (operator, error) {
	f := aggregate.Sum(stream.Val)
	defs := benchutil.TumblingQueries(5)
	ordered := t.InOrderOnly()
	lateness := int64(4000)
	if ordered {
		lateness = 0
	}
	if t == KeyedTTL {
		// The watermark lag (1001ms) already exceeds the disorder's max
		// delay, so shrinking the lateness drops nothing — it only lets
		// idle expiry observe the post-gap watermark jump.
		lateness = keyedLateness
	}
	newAg := func(kind core.StoreKind) *core.Aggregator[stream.Tuple, float64, float64] {
		ag := core.New(f, core.Options{Ordered: ordered, Lateness: lateness, Store: kind})
		// Fresh definitions on every call: window definitions carry
		// trigger-cursor state, so per-key operators sharing one defs
		// slice would hand each window's single trigger to whichever key
		// processes it first, silently starving every other key (see
		// core.NewKeyed). The single-operator techniques below call this
		// once, so they are unaffected either way.
		for _, d := range benchutil.TumblingQueries(5) {
			ag.MustAddQuery(d)
		}
		return ag
	}
	switch t {
	case benchutil.LazySlicing:
		return &sliceOp{ag: newAg(core.StoreLazy)}, nil
	case benchutil.EagerSlicing:
		return &sliceOp{ag: newAg(core.StoreEager)}, nil
	case benchutil.DABASlicing:
		return &sliceOp{ag: newAg(core.StoreDABA)}, nil
	case benchutil.FleetSlicing:
		fl := fleet.New(f, fleet.Options{Options: core.Options{Lateness: lateness}})
		for _, d := range []window.Definition{
			window.Sliding(stream.Time, 4000, 250),
			window.Sliding(stream.Time, 8000, 250),
			window.Sliding(stream.Time, 2000, 250),
			window.Sliding(stream.Time, 4000, 250), // exact duplicate → fan-out
			window.Tumbling(stream.Time, 1000),
		} {
			fl.MustAddQuery(d)
		}
		if fl.Plan().Factored == 0 {
			return nil, fmt.Errorf("chaos: fleet workload was meant to factor")
		}
		return &fleetOp{fl: fl}, nil
	case Keyed, KeyedTTL, KeyedSpill:
		var ttl int64
		if t == KeyedTTL {
			ttl = keyedTTL
		}
		k := core.NewKeyed(
			func(v stream.Tuple) int32 { return v.Key }, ttl,
			func() *core.Aggregator[stream.Tuple, float64, float64] { return newAg(core.StoreLazy) },
		)
		if t == KeyedSpill {
			if spillDir == "" {
				return nil, fmt.Errorf("chaos: keyed-spill needs a spill directory")
			}
			st, err := spill.Open(spillDir)
			if err != nil {
				return nil, err
			}
			if err := k.EnableSpill(core.SpillConfig{Budget: keyedSpillBudget, Store: st, Metrics: reg}); err != nil {
				return nil, err
			}
		}
		return &keyedOp{op: k}, nil
	case benchutil.Pairs:
		return feedQueries(baselines.NewPairs(f), defs), nil
	case benchutil.Cutty:
		return feedQueries(baselines.NewCutty(f), defs), nil
	case benchutil.Buckets:
		return feedQueries(baselines.NewBuckets(f, false, ordered, lateness), defs), nil
	case benchutil.TupleBuckets:
		return feedQueries(baselines.NewBuckets(f, true, ordered, lateness), defs), nil
	case benchutil.TupleBuffer:
		return feedQueries(baselines.NewTupleBuffer(f, ordered, lateness), defs), nil
	case benchutil.AggTree:
		return feedQueries(baselines.NewAggTree(f, ordered, lateness), defs), nil
	default:
		return nil, fmt.Errorf("chaos: unknown technique %q", t)
	}
}

func feedQueries(op baselines.Operator[stream.Tuple, float64], defs []window.Definition) *baseOp {
	for _, d := range defs {
		op.AddQuery(d)
	}
	return &baseOp{op: op}
}

// ------------------------------------------------------------ processor ----

// proc is the engine processor: it injects crashes between operator calls
// (so every operator invocation is atomic with respect to failures), feeds
// the operator, and publishes results to the shared log — the "external
// sink" whose contents the equivalence check compares.
type proc struct {
	part  int
	op    operator
	log   *Log
	crash *crashState
	seen  int64 // tuples processed since the stream origin
	trim  int64 // replayed results still to suppress (ReplayTrimmer)
}

func (p *proc) ProcessItem(it stream.Item[stream.Tuple]) int {
	if it.Kind == stream.KindEvent {
		if p.crash.shouldPanic(p.part, p.seen) {
			panic(fmt.Sprintf("chaos: injected crash at tuple %d of partition %d", p.seen, p.part))
		}
		p.seen++
	}
	lines := p.op.feed(it)
	for _, ln := range lines {
		if p.trim > 0 {
			p.trim--
			continue
		}
		p.log.append(p.part, ln)
	}
	return len(lines)
}

func (p *proc) TrimReplay(n int64) { p.trim = n }

// snapProc adds engine.Snapshottable on top of proc for techniques that
// support state snapshots. The snapshot covers the operator state plus the
// processor's own tuple counter, so crash points keep their positions across
// restores.
type snapProc struct {
	proc
	snap snapOperator
}

func (p *snapProc) Snapshot() ([]byte, error) {
	state, err := p.snap.snapshot()
	if err != nil {
		return nil, err
	}
	enc := checkpoint.NewEncoder()
	enc.Bytes(state)
	enc.Int64(p.seen)
	return enc.Seal(), nil
}

func (p *snapProc) Restore(data []byte) error {
	dec, err := checkpoint.NewDecoder(data)
	if err != nil {
		return err
	}
	state := dec.Bytes()
	seen := dec.Int64()
	if err := dec.Err(); err != nil {
		return err
	}
	if err := p.snap.restore(state); err != nil {
		return err
	}
	p.seen = seen
	p.crash.Restores.Add(1)
	return nil
}

// ---------------------------------------------------------------- runner ---

// Options configures one harness run.
type Options struct {
	Technique benchutil.Technique
	Events    int
	Par       int
	Seed      int64
	// Sched, when non-nil, enables checkpointing (2s barrier interval into
	// Dir) and applies the fault plan. Nil runs clean and unsupervised —
	// the reference execution.
	Sched *Schedule
	Dir   string
}

// RunResult is the observable outcome of a harness run.
type RunResult struct {
	Stats    engine.Stats
	Log      *Log
	Restores int64
	// SpillStores and SpillLoads aggregate the keyed-spill technique's
	// blob writes and re-hydrations across partitions and restarts (zero
	// for every other technique). Their exact values are nondeterministic
	// across fault plans — they witness that spilling happened, nothing
	// more.
	SpillStores int64
	SpillLoads  int64
}

// Run executes one technique under the options and returns what an external
// observer saw: the per-partition result log and the engine stats.
func Run(o Options) (RunResult, error) {
	var (
		spillRoot string
		spillReg  *obs.Registry
	)
	if o.Technique == KeyedSpill {
		dir, err := os.MkdirTemp("", "chaos-spill-")
		if err != nil {
			return RunResult{}, err
		}
		spillRoot = dir // handed to the engine below, which removes it
		spillReg = obs.NewRegistry()
	}
	// Validate the technique once up front (partition index o.Par is a
	// scratch spill directory no real partition uses).
	if _, err := buildOperator(o.Technique, partitionSpillDir(spillRoot, o.Par), spillReg); err != nil {
		return RunResult{}, err
	}
	d := stream.Disorder{Fraction: 0.1, MaxDelay: 1000, Seed: o.Seed}
	if o.Technique.InOrderOnly() {
		d = stream.Disorder{}
	}
	in := benchutil.MakeInput(stream.Machine(), o.Events, d, o.Seed)

	log := NewLog(o.Par)
	var points []CrashPoint
	if o.Sched != nil {
		points = o.Sched.Crashes
	}
	crash := newCrashState(points)

	cfg := engine.Config[stream.Tuple]{
		Parallelism: o.Par,
		SpillDir:    spillRoot,
		Key:         func(e stream.Event[stream.Tuple]) uint64 { return uint64(e.Value.Key) },
		NewProcessor: func(p int) engine.Processor[stream.Tuple] {
			//lint:ignore errflow the technique was validated by buildOperator before the run started; rebuilding it for a partition cannot fail differently
			op, _ := buildOperator(o.Technique, partitionSpillDir(spillRoot, p), spillReg) // validated above
			base := proc{part: p, op: op, log: log, crash: crash}
			if so, ok := op.(snapOperator); ok {
				return &snapProc{proc: base, snap: so}
			}
			return &base
		},
	}
	if o.Sched != nil {
		cfg.Checkpoint = engine.CheckpointConfig{
			Interval:    2000,
			Dir:         o.Dir,
			MaxRestarts: len(o.Sched.Crashes) + 1,
			Sleep:       func(time.Duration) {},
		}
		if o.Sched.TornEven {
			cfg.Checkpoint.WriteFile = tearEvenSnapshots
		}
		switch o.Sched.Barriers {
		case BarriersDropped:
			cfg.Checkpoint.BarrierFault = func(id, partition int) engine.BarrierAction {
				if id%2 == 0 && partition == 0 {
					return engine.BarrierDrop
				}
				return engine.BarrierDeliver
			}
		case BarriersDuplicated:
			cfg.Checkpoint.BarrierFault = func(id, partition int) engine.BarrierAction {
				return engine.BarrierDuplicate
			}
		}
	}
	stats, err := engine.Run(cfg, in.Items)
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{Stats: stats, Log: log, Restores: crash.Restores.Load()}
	if spillReg != nil {
		res.SpillStores = spillReg.Counter("core_spill_stores_total").Value()
		res.SpillLoads = spillReg.Counter("core_spill_loads_total").Value()
	}
	return res, nil
}

// partitionSpillDir is engine.PartitionSpillDir gated on spilling being
// enabled for the run at all.
func partitionSpillDir(root string, p int) string {
	if root == "" {
		return ""
	}
	return engine.PartitionSpillDir(root, p)
}

// tearEvenSnapshots writes every even-id snapshot file truncated by a few
// bytes while reporting success — the write "succeeds" but the file fails
// validation on recovery, forcing the fallback to an older checkpoint.
func tearEvenSnapshots(path string, data []byte) error {
	var id, part int
	name := path[strings.LastIndex(path, "ckpt-"):]
	//lint:ignore errflow Sscanf's error only means the path is not a checkpoint file; n == 2 decides whether to tear
	if n, _ := fmt.Sscanf(name, "ckpt-%d-p%d.sck", &id, &part); n == 2 && id%2 == 0 && len(data) > 8 {
		data = data[: len(data)-5 : len(data)-5]
	}
	// Mirror the engine's atomic default writer: the tear is in the payload,
	// not in the write.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Equivalent reports whether two runs emitted identical results: the same
// event and result counts and, per partition, byte-identical result lines in
// identical order. It returns nil when equivalent and a description of the
// first divergence otherwise.
func Equivalent(clean, got RunResult) error {
	if clean.Stats.Events != got.Stats.Events {
		return fmt.Errorf("events: %d, clean %d", got.Stats.Events, clean.Stats.Events)
	}
	if clean.Stats.Results != got.Stats.Results {
		return fmt.Errorf("results: %d, clean %d", got.Stats.Results, clean.Stats.Results)
	}
	if clean.Log.Partitions() != got.Log.Partitions() {
		return fmt.Errorf("partitions: %d, clean %d", got.Log.Partitions(), clean.Log.Partitions())
	}
	for p := 0; p < clean.Log.Partitions(); p++ {
		a, b := clean.Log.Partition(p), got.Log.Partition(p)
		if len(a) != len(b) {
			return fmt.Errorf("partition %d: %d results, clean %d", p, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				return fmt.Errorf("partition %d result %d: %q, clean %q", p, i, b[i], a[i])
			}
		}
	}
	return nil
}
