package chaos

import (
	"testing"

	"scotty/internal/benchutil"
	"scotty/internal/stream"
)

// seeds are the fixed fault-plan seeds the CI chaos leg runs with; every
// schedule, stream, and verdict below is a pure function of them.
var seeds = []int64{1, 42}

const (
	chaosEvents = 8000
	chaosPar    = 2
)

// cleanRun executes the reference run: no checkpointing, no faults.
func cleanRun(t *testing.T, tech benchutil.Technique, seed int64) RunResult {
	t.Helper()
	res, err := Run(Options{Technique: tech, Events: chaosEvents, Par: chaosPar, Seed: seed})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if res.Stats.Results == 0 {
		t.Fatalf("clean run emitted no results — the workload proves nothing")
	}
	return res
}

// TestCrashRecoveryEquivalence is the harness's core claim: for every
// technique (snapshottable slicing operators and origin-replayed baselines
// alike), a run killed at three seeded points and supervised back to life
// emits exactly the results of an uninterrupted run.
func TestCrashRecoveryEquivalence(t *testing.T) {
	for _, tech := range Techniques() {
		for _, seed := range seeds {
			tech, seed := tech, seed
			t.Run(string(tech)+"/seed"+itoa(seed), func(t *testing.T) {
				t.Parallel()
				clean := cleanRun(t, tech, seed)
				sched := NewSchedule(seed, chaosPar, chaosEvents)
				got, err := Run(Options{
					Technique: tech, Events: chaosEvents, Par: chaosPar, Seed: seed,
					Sched: &sched, Dir: t.TempDir(),
				})
				if err != nil {
					t.Fatalf("chaos run: %v", err)
				}
				if got.Stats.Recoveries != len(sched.Crashes) {
					t.Fatalf("recoveries = %d, want %d (schedule %+v)",
						got.Stats.Recoveries, len(sched.Crashes), sched.Crashes)
				}
				if err := Equivalent(clean, got); err != nil {
					t.Fatalf("recovered run diverged: %v", err)
				}
			})
		}
	}
}

// snapshottable techniques are the ones whose recovery restores state from
// checkpoint files — the only ones torn files and barrier faults can affect.
var snapshottableTechniques = []benchutil.Technique{
	benchutil.LazySlicing, benchutil.EagerSlicing, benchutil.DABASlicing,
	Keyed, KeyedTTL, KeyedSpill,
}

// TestTornSnapshotEquivalence tears every even-id snapshot file on disk (the
// writes still report success) and kills the run; recovery must detect the
// corruption, fall back to an intact checkpoint, and still converge on the
// clean results.
func TestTornSnapshotEquivalence(t *testing.T) {
	for _, tech := range snapshottableTechniques {
		for _, seed := range seeds {
			tech, seed := tech, seed
			t.Run(string(tech)+"/seed"+itoa(seed), func(t *testing.T) {
				t.Parallel()
				clean := cleanRun(t, tech, seed)
				sched := NewSchedule(seed, chaosPar, chaosEvents)
				sched.TornEven = true
				got, err := Run(Options{
					Technique: tech, Events: chaosEvents, Par: chaosPar, Seed: seed,
					Sched: &sched, Dir: t.TempDir(),
				})
				if err != nil {
					t.Fatalf("chaos run: %v", err)
				}
				if err := Equivalent(clean, got); err != nil {
					t.Fatalf("recovered run diverged: %v", err)
				}
			})
		}
	}
}

// TestBarrierFaultEquivalence drops every other barrier from one partition
// (those checkpoints never complete) and, separately, duplicates every
// barrier (alignment must be idempotent); both runs are killed per the
// schedule and must still match the clean run.
func TestBarrierFaultEquivalence(t *testing.T) {
	for _, mode := range []struct {
		name string
		m    BarrierMode
	}{{"dropped", BarriersDropped}, {"duplicated", BarriersDuplicated}} {
		for _, tech := range snapshottableTechniques {
			mode, tech := mode, tech
			t.Run(mode.name+"/"+string(tech), func(t *testing.T) {
				t.Parallel()
				seed := seeds[0]
				clean := cleanRun(t, tech, seed)
				sched := NewSchedule(seed, chaosPar, chaosEvents)
				sched.Barriers = mode.m
				got, err := Run(Options{
					Technique: tech, Events: chaosEvents, Par: chaosPar, Seed: seed,
					Sched: &sched, Dir: t.TempDir(),
				})
				if err != nil {
					t.Fatalf("chaos run: %v", err)
				}
				if err := Equivalent(clean, got); err != nil {
					t.Fatalf("recovered run diverged: %v", err)
				}
			})
		}
	}
}

// TestSnapshottableTechniquesRestoreFromCheckpoints pins the two recovery
// paths apart: slicing operators must recover via state restore (not origin
// replay), and baselines must recover without any restore at all.
func TestSnapshottableTechniquesRestoreFromCheckpoints(t *testing.T) {
	seed := seeds[1]
	sched := NewSchedule(seed, chaosPar, chaosEvents)
	run := func(t *testing.T, tech benchutil.Technique) RunResult {
		got, err := Run(Options{
			Technique: tech, Events: chaosEvents, Par: chaosPar, Seed: seed,
			Sched: &sched, Dir: t.TempDir(),
		})
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		return got
	}
	t.Run("slicing-restores", func(t *testing.T) {
		if got := run(t, benchutil.LazySlicing); got.Restores == 0 {
			t.Fatal("lazy slicing recovered without restoring a checkpoint")
		}
	})
	t.Run("baseline-replays-from-origin", func(t *testing.T) {
		if got := run(t, benchutil.TupleBuffer); got.Restores != 0 {
			t.Fatalf("tuple buffer restored %d checkpoints; baselines have no snapshot support", got.Restores)
		}
	})
}

// TestKeyedTTLWorkloadExpiresKeys guards the keyed-ttl technique against
// vacuity: on the shared Machine workload the idle TTL must actually fire —
// the key count has to fall after it peaked (post-gap expiry drains) — or the
// technique would just re-run plain Keyed under a different name.
func TestKeyedTTLWorkloadExpiresKeys(t *testing.T) {
	op, err := buildOperator(KeyedTTL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	k := op.(*keyedOp).op
	d := stream.Disorder{Fraction: 0.1, MaxDelay: 1000, Seed: seeds[0]}
	in := benchutil.MakeInput(stream.Machine(), chaosEvents, d, seeds[0])
	maxKeys, expired := 0, false
	for _, it := range in.Items {
		op.feed(it)
		if n := k.Keys(); n > maxKeys {
			maxKeys = n
		} else if n < maxKeys {
			expired = true
		}
	}
	if maxKeys != stream.Machine().Keys {
		t.Errorf("peak key count = %d, want %d", maxKeys, stream.Machine().Keys)
	}
	if !expired {
		t.Error("idle TTL never expired a key — the keyed-ttl chaos runs prove nothing")
	}
}

// TestKeyedSpillWorkloadSpills guards the keyed-spill technique against
// vacuity the same way: under its tiny budget the clean run must both write
// cold state out and re-hydrate it, or the chaos equivalence over this
// technique would never touch the spill paths.
func TestKeyedSpillWorkloadSpills(t *testing.T) {
	res := cleanRun(t, KeyedSpill, seeds[0])
	if res.SpillStores == 0 {
		t.Error("no key was ever spilled — the budget is not binding")
	}
	if res.SpillLoads == 0 {
		t.Error("no spilled key was ever re-hydrated — the load path went unexercised")
	}
}

// TestScheduleIsDeterministic guards the reproducibility contract.
func TestScheduleIsDeterministic(t *testing.T) {
	a := NewSchedule(7, 4, 100_000)
	b := NewSchedule(7, 4, 100_000)
	if len(a.Crashes) != 3 {
		t.Fatalf("want 3 crash points, got %d", len(a.Crashes))
	}
	for i := range a.Crashes {
		if a.Crashes[i] != b.Crashes[i] {
			t.Fatalf("schedule not deterministic: %+v vs %+v", a.Crashes, b.Crashes)
		}
	}
	c := NewSchedule(8, 4, 100_000)
	same := true
	for i := range a.Crashes {
		if a.Crashes[i] != c.Crashes[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
