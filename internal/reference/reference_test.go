package reference

import (
	"testing"

	"scotty/internal/aggregate"
	"scotty/internal/stream"
)

func ident(v float64) float64 { return v }

func ev(ts int64, seq int64, v float64) stream.Event[float64] {
	return stream.Event[float64]{Time: ts, Seq: seq, Value: v}
}

func TestCanonicalSortsByTimeThenSeq(t *testing.T) {
	events := []stream.Event[float64]{ev(5, 2, 1), ev(1, 1, 2), ev(5, 1, 3)}
	c := Canonical(events)
	if c[0].Value != 2 || c[1].Value != 3 || c[2].Value != 1 {
		t.Fatalf("canonical order wrong: %+v", c)
	}
}

func TestPeriodicTimeFinals(t *testing.T) {
	f := aggregate.Sum(ident)
	events := []stream.Event[float64]{ev(1, 0, 1), ev(5, 1, 2), ev(12, 2, 4), ev(25, 3, 8)}
	finals := Finals(f, Query[float64]{Kind: Periodic, Measure: stream.Time, Length: 10, Slide: 10}, events, stream.MaxTime)
	want := map[[2]int64]float64{{0, 10}: 3, {10, 20}: 4, {20, 30}: 8}
	if len(finals) != len(want) {
		t.Fatalf("finals: %+v", finals)
	}
	for _, w := range finals {
		if want[[2]int64{w.Start, w.End}] != w.Value {
			t.Fatalf("window [%d,%d) = %v", w.Start, w.End, w.Value)
		}
	}
}

func TestPeriodicTimeRespectsFinalWatermark(t *testing.T) {
	f := aggregate.Sum(ident)
	events := []stream.Event[float64]{ev(1, 0, 1), ev(25, 1, 8)}
	finals := Finals(f, Query[float64]{Kind: Periodic, Measure: stream.Time, Length: 10, Slide: 10}, events, 15)
	// Only [0,10) completes at watermark 15 (end-1 = 9 <= 15; [10,20) needs 19).
	if len(finals) != 1 || finals[0].End != 10 {
		t.Fatalf("finals: %+v", finals)
	}
}

func TestPeriodicCountFinals(t *testing.T) {
	f := aggregate.Sum(ident)
	events := []stream.Event[float64]{ev(3, 0, 1), ev(1, 1, 2), ev(2, 2, 4), ev(9, 3, 8), ev(4, 4, 16)}
	// Canonical value order: 2 (t1), 4 (t2), 1 (t3), 16 (t4), 8 (t9).
	finals := Finals(f, Query[float64]{Kind: Periodic, Measure: stream.Count, Length: 2, Slide: 2}, events, stream.MaxTime)
	if len(finals) != 2 {
		t.Fatalf("finals: %+v", finals)
	}
	if finals[0].Value != 6 || finals[1].Value != 17 {
		t.Fatalf("count windows: %+v", finals)
	}
}

func TestSessionFinals(t *testing.T) {
	f := aggregate.Count[float64]()
	events := []stream.Event[float64]{ev(0, 0, 1), ev(5, 1, 1), ev(30, 2, 1), ev(31, 3, 1)}
	finals := Finals(f, Query[float64]{Kind: Session, Gap: 10}, events, stream.MaxTime)
	if len(finals) != 2 {
		t.Fatalf("sessions: %+v", finals)
	}
	if finals[0].Start != 0 || finals[0].End != 15 || finals[0].N != 2 {
		t.Fatalf("session 1: %+v", finals[0])
	}
	if finals[1].Start != 30 || finals[1].End != 41 || finals[1].N != 2 {
		t.Fatalf("session 2: %+v", finals[1])
	}
}

func TestSessionGapBoundaryIsExclusive(t *testing.T) {
	f := aggregate.Count[float64]()
	// Exactly gap apart: separate sessions (same session iff distance < gap).
	events := []stream.Event[float64]{ev(0, 0, 1), ev(10, 1, 1)}
	finals := Finals(f, Query[float64]{Kind: Session, Gap: 10}, events, stream.MaxTime)
	if len(finals) != 2 {
		t.Fatalf("expected two sessions: %+v", finals)
	}
}

func TestPunctuationFinals(t *testing.T) {
	f := aggregate.Sum(ident)
	pred := func(v float64) bool { return v < 0 }
	events := []stream.Event[float64]{ev(1, 0, 1), ev(4, 1, -1), ev(6, 2, 2), ev(9, 3, -1), ev(12, 4, 4)}
	finals := Finals(f, Query[float64]{Kind: Punctuation, Pred: pred}, events, stream.MaxTime)
	if len(finals) != 2 {
		t.Fatalf("punct windows: %+v", finals)
	}
	// [0,5): values 1, -1; [5,10): 2, -1. The trailing window is open.
	if finals[0].Value != 0 || finals[1].Value != 1 {
		t.Fatalf("punct values: %+v", finals)
	}
}

func TestCountInTimeFinals(t *testing.T) {
	f := aggregate.Sum(ident)
	events := []stream.Event[float64]{ev(50, 0, 1), ev(90, 1, 2), ev(110, 2, 4), ev(180, 3, 8), ev(240, 4, 16)}
	finals := Finals(f, Query[float64]{Kind: CountInTime, N: 3, Every: 100}, events, stream.MaxTime)
	// T=100: last 3 of {1,2} → [0,2) sum 3. T=200: last 3 of 4 → ranks [1,4) sum 14.
	if len(finals) != 2 {
		t.Fatalf("CIT windows: %+v", finals)
	}
	if finals[0].Value != 3 || finals[1].Value != 14 {
		t.Fatalf("CIT values: %+v", finals)
	}
}
