// Package reference computes window aggregates by brute force, straight from
// the complete tuple log. It shares no code with the slicing core, the window
// library's trigger logic, or the baselines — it is the independent oracle
// the property tests compare every operator against: after all tuples and a
// final watermark, the last value an operator emitted for each window must
// equal the oracle's.
package reference

import (
	"sort"

	"scotty/internal/aggregate"
	"scotty/internal/stream"
)

// Kind enumerates the window types the oracle understands.
type Kind uint8

const (
	Periodic Kind = iota // tumbling / sliding
	Session
	Punctuation
	CountInTime
)

// Query describes one window query in oracle terms.
type Query[V any] struct {
	Kind    Kind
	Measure stream.Measure // Periodic only; others imply their measure
	Length  int64          // Periodic: window length
	Slide   int64          // Periodic: slide step
	Gap     int64          // Session: inactivity gap
	Pred    func(V) bool   // Punctuation: boundary marker predicate
	N       int64          // CountInTime: tuples per window
	Every   int64          // CountInTime: trigger period (ms)
}

// Final is one expected window result.
type Final[Out any] struct {
	Start, End int64
	Value      Out
	N          int64
}

// Canonical returns the events sorted in canonical (time, seq) order.
func Canonical[V any](events []stream.Event[V]) []stream.Event[V] {
	out := make([]stream.Event[V], len(events))
	copy(out, events)
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Finals computes the expected set of final window results for the query over
// the complete event set, given the final effective watermark (use
// stream.MaxTime when the stream ends with a closing watermark). Events may
// be passed in any order.
func Finals[V, A, Out any](f aggregate.Function[V, A, Out], q Query[V], events []stream.Event[V], finalWM int64) []Final[Out] {
	ev := Canonical(events)
	switch q.Kind {
	case Periodic:
		if q.Measure == stream.Time {
			return periodicTime(f, q, ev, finalWM)
		}
		return periodicCount(f, q, ev)
	case Session:
		return sessions(f, q, ev, finalWM)
	case Punctuation:
		return punctuations(f, q, ev, finalWM)
	case CountInTime:
		return countInTime(f, q, ev, finalWM)
	default:
		panic("reference: unknown query kind")
	}
}

// foldTime aggregates events with time in [from, to); events are canonical.
func foldTime[V, A, Out any](f aggregate.Function[V, A, Out], ev []stream.Event[V], from, to int64) (Out, int64) {
	lo := sort.Search(len(ev), func(i int) bool { return ev[i].Time >= from })
	hi := sort.Search(len(ev), func(i int) bool { return ev[i].Time >= to })
	return f.Lower(aggregate.Recompute(f, ev[lo:hi])), int64(hi - lo)
}

// foldRank aggregates events with canonical rank in [from, to).
func foldRank[V, A, Out any](f aggregate.Function[V, A, Out], ev []stream.Event[V], from, to int64) (Out, int64) {
	if from < 0 {
		from = 0
	}
	if to > int64(len(ev)) {
		to = int64(len(ev))
	}
	if from >= to {
		return f.Lower(f.Identity()), 0
	}
	return f.Lower(aggregate.Recompute(f, ev[from:to])), to - from
}

func maxTime[V any](ev []stream.Event[V]) int64 {
	m := stream.MinTime
	for _, e := range ev {
		if e.Time > m {
			m = e.Time
		}
	}
	return m
}

func periodicTime[V, A, Out any](f aggregate.Function[V, A, Out], q Query[V], ev []stream.Event[V], finalWM int64) []Final[Out] {
	var out []Final[Out]
	cap := maxTime(ev) + q.Length
	if finalWM > cap {
		finalWM = cap
	}
	for end := q.Length; end-1 <= finalWM; end += q.Slide {
		v, n := foldTime(f, ev, end-q.Length, end)
		out = append(out, Final[Out]{Start: end - q.Length, End: end, Value: v, N: n})
	}
	return out
}

func periodicCount[V, A, Out any](f aggregate.Function[V, A, Out], q Query[V], ev []stream.Event[V]) []Final[Out] {
	var out []Final[Out]
	total := int64(len(ev))
	for end := q.Length; end <= total; end += q.Slide {
		v, n := foldRank(f, ev, end-q.Length, end)
		out = append(out, Final[Out]{Start: end - q.Length, End: end, Value: v, N: n})
	}
	return out
}

func sessions[V, A, Out any](f aggregate.Function[V, A, Out], q Query[V], ev []stream.Event[V], finalWM int64) []Final[Out] {
	var out []Final[Out]
	i := 0
	for i < len(ev) {
		j := i + 1
		for j < len(ev) && ev[j].Time-ev[j-1].Time < q.Gap {
			j++
		}
		end := ev[j-1].Time + q.Gap
		if end-1 <= finalWM {
			v, n := foldTime(f, ev, ev[i].Time, end)
			out = append(out, Final[Out]{Start: ev[i].Time, End: end, Value: v, N: n})
		}
		i = j
	}
	return out
}

func punctuations[V, A, Out any](f aggregate.Function[V, A, Out], q Query[V], ev []stream.Event[V], finalWM int64) []Final[Out] {
	bounds := []int64{0}
	for _, e := range ev {
		if q.Pred(e.Value) {
			b := e.Time + 1
			if bounds[len(bounds)-1] != b {
				bounds = append(bounds, b)
			}
		}
	}
	var out []Final[Out]
	for i := 1; i < len(bounds); i++ {
		if bounds[i]-1 > finalWM {
			break
		}
		v, n := foldTime(f, ev, bounds[i-1], bounds[i])
		out = append(out, Final[Out]{Start: bounds[i-1], End: bounds[i], Value: v, N: n})
	}
	return out
}

func countInTime[V, A, Out any](f aggregate.Function[V, A, Out], q Query[V], ev []stream.Event[V], finalWM int64) []Final[Out] {
	var out []Final[Out]
	cap := maxTime(ev)
	if finalWM > cap {
		finalWM = cap
	}
	seen := map[[2]int64]bool{}
	for t := q.Every; t <= finalWM; t += q.Every {
		end := int64(sort.Search(len(ev), func(i int) bool { return ev[i].Time > t }))
		if end <= 0 {
			continue
		}
		start := end - q.N
		if start < 0 {
			start = 0
		}
		key := [2]int64{start, end}
		if seen[key] {
			continue
		}
		seen[key] = true
		v, n := foldRank(f, ev, start, end)
		out = append(out, Final[Out]{Start: start, End: end, Value: v, N: n})
	}
	return out
}
