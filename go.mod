module scotty

go 1.22
