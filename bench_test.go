// Benchmarks mirroring the paper's evaluation (§6): one testing.B benchmark
// per table and figure, built on the same harness as cmd/benchmark. Each
// benchmark processes b.N stream tuples (or performs b.N final aggregations
// for the latency figures) and additionally reports tuples/s.
//
//	go test -bench=. -benchmem
//
// cmd/benchmark regenerates the full sweeps/series of each figure; the
// benchmarks here pin one representative configuration per series so the
// suite stays comparable run over run.
package scotty

import (
	"math/rand"
	"testing"

	"scotty/internal/aggregate"
	"scotty/internal/baselines"
	"scotty/internal/benchutil"
	"scotty/internal/core"
	"scotty/internal/engine"
	"scotty/internal/fat"
	"scotty/internal/memsize"
	"scotty/internal/rle"
	"scotty/internal/stream"
	"scotty/internal/window"
)

// feed replays n generated tuples through a fresh operator and reports
// throughput.
func feed(b *testing.B, t benchutil.Technique, f func() benchutil.Op, in benchutil.Input) {
	b.Helper()
	op := f()
	b.ResetTimer()
	for _, it := range in.Items {
		op(it)
	}
	b.StopTimer()
	b.ReportMetric(float64(in.Events)/b.Elapsed().Seconds(), "tuples/s")
}

// mustOp unwraps a NewOp result inside benchmarks, where the technique is
// fixed and a constructor error is a harness bug.
func mustOp(op benchutil.Op, err error) benchutil.Op {
	if err != nil {
		panic(err)
	}
	return op
}

func mustBatchOp(op benchutil.BatchOp, err error) benchutil.BatchOp {
	if err != nil {
		panic(err)
	}
	return op
}

func throughputBench(b *testing.B, t benchutil.Technique, w benchutil.Workload, d stream.Disorder) {
	b.Helper()
	in := benchutil.MakeInput(stream.Football(), b.N, d, 42)
	feed(b, t, func() benchutil.Op { return mustOp(benchutil.NewOp(t, benchutil.SumFn(), w)) }, in)
}

// ----------------------------------------------------------------- Fig 8 ---

func BenchmarkFig8Throughput(b *testing.B) {
	for _, t := range benchutil.AllTechniques {
		b.Run(string(t)+"/w20", func(b *testing.B) {
			throughputBench(b, t, benchutil.Workload{
				Ordered: true,
				Defs:    func() []window.Definition { return benchutil.TumblingQueries(20) },
			}, stream.Disorder{})
		})
	}
	// The batched run fast path over the same workload — the lazy-slicing-batch
	// series of cmd/benchmark, pinned at the engine's default 256-item batch.
	b.Run("lazy-slicing-batch/w20", func(b *testing.B) {
		w := benchutil.Workload{
			Ordered: true,
			Defs:    func() []window.Definition { return benchutil.TumblingQueries(20) },
		}
		in := benchutil.MakeInput(stream.Football(), b.N, stream.Disorder{}, 42)
		op := mustBatchOp(benchutil.NewBatchOp(benchutil.LazySlicing, benchutil.SumFn(), w))
		b.ResetTimer()
		benchutil.ThroughputBatched(op, in, 256)
		b.StopTimer()
		b.ReportMetric(float64(in.Events)/b.Elapsed().Seconds(), "tuples/s")
	})
}

// ----------------------------------------------------------------- Fig 9 ---

func BenchmarkFig9ThroughputOOO(b *testing.B) {
	for _, t := range []benchutil.Technique{
		benchutil.LazySlicing, benchutil.EagerSlicing, benchutil.Buckets,
		benchutil.TupleBuffer, benchutil.AggTree,
	} {
		b.Run(string(t)+"/w20", func(b *testing.B) {
			throughputBench(b, t, benchutil.Workload{
				Lateness: 4000,
				Defs: func() []window.Definition {
					return benchutil.WithSession(benchutil.TumblingQueries(20))
				},
			}, stream.Disorder{Fraction: 0.2, MaxDelay: 2000, Seed: 7})
		})
	}
}

// ---------------------------------------------------------------- Fig 10 ---

func BenchmarkFig10Memory(b *testing.B) {
	// State build + deep-size measurement; bytes reported as a metric.
	// Operators are built concretely so the deep-size walker sees their
	// state (closures are opaque to reflection).
	ev := func(n int) []stream.Event[stream.Tuple] {
		out := make([]stream.Event[stream.Tuple], n)
		for i := range out {
			out[i] = stream.Event[stream.Tuple]{Time: int64(i), Seq: int64(i), Value: stream.Tuple{V: 1}}
		}
		return out
	}
	def := func() window.Definition { return window.Tumbling(stream.Time, 64) }
	f := benchutil.SumFn()
	const lateness = int64(1) << 40

	b.Run("lazy-slicing", func(b *testing.B) {
		ag := core.New(f, core.Options{Lateness: lateness})
		ag.MustAddQuery(def())
		b.ResetTimer()
		for _, e := range ev(b.N) {
			ag.ProcessElement(e)
		}
		b.StopTimer()
		b.ReportMetric(float64(memsize.Of(ag)), "state-bytes")
	})
	b.Run("eager-slicing", func(b *testing.B) {
		ag := core.New(f, core.Options{Lateness: lateness, Eager: true})
		ag.MustAddQuery(def())
		b.ResetTimer()
		for _, e := range ev(b.N) {
			ag.ProcessElement(e)
		}
		b.StopTimer()
		b.ReportMetric(float64(memsize.Of(ag)), "state-bytes")
	})
	b.Run("buckets", func(b *testing.B) {
		op := baselines.NewBuckets(f, false, false, lateness)
		op.AddQuery(def())
		b.ResetTimer()
		for _, e := range ev(b.N) {
			op.ProcessElement(e)
		}
		b.StopTimer()
		b.ReportMetric(float64(memsize.Of(op)), "state-bytes")
	})
	b.Run("tuple-buffer", func(b *testing.B) {
		op := baselines.NewTupleBuffer(f, false, lateness)
		op.AddQuery(def())
		b.ResetTimer()
		for _, e := range ev(b.N) {
			op.ProcessElement(e)
		}
		b.StopTimer()
		b.ReportMetric(float64(memsize.Of(op)), "state-bytes")
	})
	b.Run("agg-tree", func(b *testing.B) {
		op := baselines.NewAggTree(f, false, lateness)
		op.AddQuery(def())
		b.ResetTimer()
		for _, e := range ev(b.N) {
			op.ProcessElement(e)
		}
		b.StopTimer()
		b.ReportMetric(float64(memsize.Of(op)), "state-bytes")
	})
}

// ---------------------------------------------------------------- Fig 11 ---

func latencyStore(entries int) ([]float64, *fat.Tree[float64], map[int64]float64) {
	rng := rand.New(rand.NewSource(5))
	f := aggregate.Sum(stream.Val)
	parts := make([]float64, entries)
	tree := fat.New(f.Combine, f.Identity())
	m := make(map[int64]float64, entries)
	for i := range parts {
		parts[i] = float64(rng.Intn(1000))
		tree.Push(parts[i])
		m[int64(i)] = parts[i]
	}
	return parts, tree, m
}

func BenchmarkFig11LatencySum(b *testing.B) {
	const entries = 10_000
	parts, tree, m := latencyStore(entries)
	var sink float64
	b.Run("lazy-fold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := 0.0
			for _, p := range parts {
				a += p
			}
			sink = a
		}
	})
	b.Run("eager-tree-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = tree.Query(entries/3, entries-1)
		}
	})
	b.Run("bucket-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = m[int64(i%entries)]
		}
	})
	_ = sink
}

func BenchmarkFig11LatencyMedian(b *testing.B) {
	const entries = 1000
	rng := rand.New(rand.NewSource(5))
	f := aggregate.Median(stream.Val)
	parts := make([]*rle.Multiset, entries)
	tree := fat.New(f.Combine, f.Identity())
	for i := range parts {
		parts[i] = rle.Of(float64(rng.Intn(1000)))
		tree.Push(parts[i])
	}
	var sink float64
	b.Run("lazy-fold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := f.Identity()
			for _, p := range parts {
				a = f.Combine(a, p)
			}
			sink = f.Lower(a)
		}
	})
	b.Run("eager-tree-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = f.Lower(tree.Query(entries/3, entries-1))
		}
	})
	_ = sink
}

// ---------------------------------------------------------------- Fig 12 ---

func BenchmarkFig12aOOOFraction(b *testing.B) {
	for _, frac := range []float64{0, 0.2, 0.6, 1.0} {
		b.Run(pct(frac), func(b *testing.B) {
			throughputBench(b, benchutil.LazySlicing, benchutil.Workload{
				Lateness: 4000,
				Defs: func() []window.Definition {
					return benchutil.WithSession(benchutil.TumblingQueries(20))
				},
			}, stream.Disorder{Fraction: frac, MaxDelay: 2000, Seed: 11})
		})
	}
}

func BenchmarkFig12bDelay(b *testing.B) {
	for _, delay := range []int64{500, 2000, 8000} {
		b.Run("delay-"+itoa(delay), func(b *testing.B) {
			throughputBench(b, benchutil.LazySlicing, benchutil.Workload{
				Lateness: 2 * delay,
				Defs: func() []window.Definition {
					return benchutil.WithSession(benchutil.TumblingQueries(20))
				},
			}, stream.Disorder{Fraction: 0.2, MaxDelay: delay, Seed: 13})
		})
	}
}

// ---------------------------------------------------------------- Fig 13 ---

func fig13Bench[A any](b *testing.B, f aggregate.Function[stream.Tuple, A, float64], m stream.Measure) {
	b.Helper()
	in := benchutil.MakeInput(stream.Football(), b.N, stream.Disorder{Fraction: 0.2, MaxDelay: 2000, Seed: 19}, 42)
	op := mustOp(benchutil.NewOp(benchutil.LazySlicing, f, benchutil.Workload{
		Lateness: 4000,
		Defs: func() []window.Definition {
			if m == stream.Time {
				return benchutil.TumblingQueries(20)
			}
			return benchutil.CountQueries(20)
		},
	}))
	b.ResetTimer()
	for _, it := range in.Items {
		op(it)
	}
	b.StopTimer()
	b.ReportMetric(float64(in.Events)/b.Elapsed().Seconds(), "tuples/s")
}

func BenchmarkFig13Aggregations(b *testing.B) {
	for _, m := range []stream.Measure{stream.Time, stream.Count} {
		m := m
		b.Run("sum/"+m.String(), func(b *testing.B) { fig13Bench(b, aggregate.Sum(stream.Val), m) })
		b.Run("sum-no-invert/"+m.String(), func(b *testing.B) { fig13Bench(b, aggregate.NaiveSum(stream.Val), m) })
		b.Run("min/"+m.String(), func(b *testing.B) { fig13Bench(b, aggregate.Min(stream.Val), m) })
		b.Run("mean/"+m.String(), func(b *testing.B) { fig13Bench(b, aggregate.Mean(stream.Val), m) })
		b.Run("median/"+m.String(), func(b *testing.B) { fig13Bench(b, aggregate.Median(stream.Val), m) })
	}
}

// ---------------------------------------------------------------- Fig 14 ---

func BenchmarkFig14Holistic(b *testing.B) {
	for _, t := range []benchutil.Technique{benchutil.LazySlicing, benchutil.TupleBuffer} {
		for _, p := range []stream.Profile{stream.Football(), stream.Machine()} {
			b.Run(string(t)+"/"+p.Name, func(b *testing.B) {
				in := benchutil.MakeInput(p, b.N, stream.Disorder{Fraction: 0.2, MaxDelay: 2000, Seed: 23}, 42)
				op := mustOp(benchutil.NewOp(t, aggregate.Median(stream.Val), benchutil.Workload{
					Lateness: 4000,
					Defs:     func() []window.Definition { return benchutil.TumblingQueries(20) },
				}))
				b.ResetTimer()
				for _, it := range in.Items {
					op(it)
				}
				b.StopTimer()
				b.ReportMetric(float64(in.Events)/b.Elapsed().Seconds(), "tuples/s")
			})
		}
	}
}

// ---------------------------------------------------------------- Fig 15 ---

func BenchmarkFig15SplitRecompute(b *testing.B) {
	sumF := aggregate.Sum(stream.Val)
	medF := aggregate.Median(stream.Val)
	for _, n := range []int{100, 10_000} {
		ev := make([]stream.Event[stream.Tuple], n)
		for i := range ev {
			ev[i] = stream.Event[stream.Tuple]{Time: int64(i), Seq: int64(i), Value: stream.Tuple{V: float64(i % 997)}}
		}
		b.Run("sum/n"+itoa(int64(n)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = aggregate.Recompute[stream.Tuple, float64, float64](sumF, ev)
			}
		})
		b.Run("median/n"+itoa(int64(n)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = aggregate.Recompute[stream.Tuple, *rle.Multiset, float64](medF, ev)
			}
		})
	}
}

// ---------------------------------------------------------------- Fig 16 ---

func BenchmarkFig16Measures(b *testing.B) {
	for _, m := range []stream.Measure{stream.Time, stream.Count} {
		m := m
		b.Run("slicing/"+m.String()+"/w20", func(b *testing.B) {
			in := benchutil.MakeInput(stream.Football(), b.N, stream.Disorder{Fraction: 0.2, MaxDelay: 2000, Seed: 17}, 42)
			op := mustOp(benchutil.NewOp(benchutil.LazySlicing, benchutil.SumFn(), benchutil.Workload{
				Lateness: 4000,
				Defs: func() []window.Definition {
					if m == stream.Time {
						return benchutil.TumblingQueries(20)
					}
					return benchutil.CountQueries(20)
				},
			}))
			b.ResetTimer()
			for _, it := range in.Items {
				op(it)
			}
			b.StopTimer()
			b.ReportMetric(float64(in.Events)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// ---------------------------------------------------------------- Fig 17 ---

func BenchmarkFig17Parallel(b *testing.B) {
	for _, dop := range []int{1, 2, 4} {
		b.Run("slicing/dop"+itoa(int64(dop)), func(b *testing.B) {
			in := benchutil.MakeInput(stream.Football(), b.N, stream.Disorder{}, 42)
			b.ResetTimer()
			stats, err := engine.Run(engine.Config[stream.Tuple]{
				Parallelism: dop,
				Key:         func(e stream.Event[stream.Tuple]) uint64 { return uint64(e.Value.Key) },
				NewProcessor: func(p int) engine.Processor[stream.Tuple] {
					op := mustOp(benchutil.NewOp(benchutil.LazySlicing, aggregate.M4(stream.Val), benchutil.Workload{
						Lateness: 1000,
						Defs:     func() []window.Definition { return benchutil.TumblingQueries(80) },
					}))
					return engine.ProcessorFunc[stream.Tuple](func(it stream.Item[stream.Tuple]) int { return op(it) })
				},
			}, in.Items)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(stats.Throughput(), "tuples/s")
			b.ReportMetric(stats.CPUUtilization(), "cpu-%")
		})
	}
}

// ----------------------------------------------------------- Table 1 -------

func BenchmarkTable1Memory(b *testing.B) {
	// Builds the lazy-slicing state of Table 1 row 5 over b.N tuples and
	// reports measured bytes; the full eight-row comparison is
	// `cmd/benchmark -fig table1`.
	ag := core.New(benchutil.SumFn(), core.Options{Ordered: true})
	ag.MustAddQuery(window.Tumbling(stream.Time, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ag.ProcessElement(stream.Event[stream.Tuple]{Time: int64(i), Seq: int64(i), Value: stream.Tuple{V: 1}})
	}
	b.StopTimer()
	b.ReportMetric(float64(memsize.Of(ag)), "state-bytes")
}

// --------------------------------------------------------------- ablations ---

func BenchmarkAblationEdgeCache(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			ag := core.New(benchutil.SumFn(), core.Options{Ordered: true, DisableEdgeCache: disable})
			for _, d := range benchutil.TumblingQueries(200) {
				ag.MustAddQuery(d)
			}
			in := benchutil.MakeInput(stream.Football(), b.N, stream.Disorder{}, 42)
			b.ResetTimer()
			for _, it := range in.Items {
				if it.Kind == stream.KindEvent {
					ag.ProcessElement(it.Event)
				} else {
					ag.ProcessWatermark(it.Watermark)
				}
			}
		})
	}
}

func BenchmarkAblationRLE(b *testing.B) {
	in := func(n int) benchutil.Input {
		return benchutil.MakeInput(stream.Machine(), n, stream.Disorder{Fraction: 0.2, MaxDelay: 2000, Seed: 31}, 42)
	}
	defs := func() []window.Definition { return benchutil.TumblingQueries(20) }
	b.Run("rle", func(b *testing.B) {
		input := in(b.N)
		op := mustOp(benchutil.NewOp(benchutil.LazySlicing, aggregate.Median(stream.Val), benchutil.Workload{Lateness: 4000, Defs: defs}))
		b.ResetTimer()
		for _, it := range input.Items {
			op(it)
		}
	})
	b.Run("plain", func(b *testing.B) {
		input := in(b.N)
		op := mustOp(benchutil.NewOp(benchutil.LazySlicing, aggregate.MedianNaive(stream.Val), benchutil.Workload{Lateness: 4000, Defs: defs}))
		b.ResetTimer()
		for _, it := range input.Items {
			op(it)
		}
	})
}

func BenchmarkAblationInvert(b *testing.B) {
	defs := func() []window.Definition { return benchutil.CountQueries(20) }
	d := stream.Disorder{Fraction: 0.2, MaxDelay: 2000, Seed: 29}
	b.Run("invertible", func(b *testing.B) {
		fig13BenchWithDefs(b, aggregate.Sum(stream.Val), defs, d)
	})
	b.Run("non-invertible", func(b *testing.B) {
		fig13BenchWithDefs(b, aggregate.NaiveSum(stream.Val), defs, d)
	})
}

func fig13BenchWithDefs[A any](b *testing.B, f aggregate.Function[stream.Tuple, A, float64], defs func() []window.Definition, d stream.Disorder) {
	b.Helper()
	in := benchutil.MakeInput(stream.Football(), b.N, d, 42)
	op := mustOp(benchutil.NewOp(benchutil.LazySlicing, f, benchutil.Workload{Lateness: 4000, Defs: defs}))
	b.ResetTimer()
	for _, it := range in.Items {
		op(it)
	}
	b.StopTimer()
	b.ReportMetric(float64(in.Events)/b.Elapsed().Seconds(), "tuples/s")
}

// ------------------------------------------------------------- helpers ----

func pct(f float64) string { return "ooo-" + itoa(int64(f*100)) + "%" }

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	return string(buf)
}
