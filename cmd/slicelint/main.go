// Command slicelint runs the repository's static-analysis suite — the
// compile-time enforcement of the stream-slicing contracts (see
// docs/STATIC_ANALYSIS.md):
//
//	slicelint ./...                  # lint the whole module
//	slicelint ./internal/core        # lint one package
//	slicelint -list                  # show the analyzers
//
// It exits 0 when clean, 1 when findings survive suppression, and 2 on load
// errors. Findings print as file:line:col: analyzer: message. Intentional
// violations are suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"scotty/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slicelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	chdir := fs.String("C", "", "lint the module rooted at this directory instead of the working directory's")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root := *chdir
	if root == "" {
		var err error
		root, err = moduleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "slicelint:", err)
			return 2
		}
	}
	modPath, err := lint.ModulePathFromGoMod(root)
	if err != nil {
		fmt.Fprintln(stderr, "slicelint:", err)
		return 2
	}
	loader := lint.NewLoader(modPath, root)
	// Lenient load: a package that fails to parse or type-check becomes a
	// finding (exit 1) at the offending position, like any other lint hit;
	// only failures to expand the patterns themselves are load errors (exit 2).
	pkgs, loadFindings, err := loader.LoadLenient(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "slicelint:", err)
		return 2
	}

	findings := loadFindings
	findings = append(findings, lint.Run(lint.All(), pkgs)...)
	findings = append(findings, lint.CheckDirectives(pkgs)...)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "slicelint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
