package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"aggcontract", "nondeterminism", "chanhygiene", "floateq"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"./internal/aggregate"}, &out, &errOut); code != 0 {
		t.Fatalf("linting internal/aggregate exited %d:\n%s%s", code, out.String(), errOut.String())
	}
}

func TestViolationExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixturemod\n\ngo 1.22\n")
	write("internal/core/clock.go", `package core

import "time"

func stamp() int64 { return time.Now().UnixNano() }
`)
	var out, errOut strings.Builder
	code := run([]string{"-C", dir, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("want exit 1 on violation, got %d:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "nondeterminism") {
		t.Errorf("finding output missing analyzer name:\n%s", out.String())
	}
}
