package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scotty/internal/benchutil"
)

func TestTable1SmokeRun(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("benchmark -fig table1 exited %d: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"general stream slicing benchmark", "Table 1", "technique", "formula", "measured"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// The table must contain data rows, not just headers.
	if strings.Count(got, "\n") < 5 {
		t.Fatalf("suspiciously short output:\n%s", got)
	}
}

func TestCSVModeEmitsCSV(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "table1", "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("benchmark -csv exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), ",") {
		t.Fatalf("CSV mode produced no comma-separated rows:\n%s", out.String())
	}
}

func TestUnknownFigureExitsNonZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "99"}, &out, &errOut); code == 0 {
		t.Fatal("unknown figure should exit non-zero")
	}
	if code := run(nil, &out, &errOut); code == 0 {
		t.Fatal("missing -fig should exit non-zero")
	}
}

func TestJSONRecordingArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fig15.json")
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "15", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("benchmark -json exited %d: %s", code, errOut.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchutil.Recording
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, raw)
	}
	if rec.Figure != "15" || rec.Scale != "quick" || len(rec.Points) == 0 {
		t.Fatalf("unexpected recording: figure=%q scale=%q points=%d", rec.Figure, rec.Scale, len(rec.Points))
	}
	for _, p := range rec.Points {
		if p.Series == "" {
			t.Fatalf("point without series: %+v", p)
		}
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Fatalf("missing confirmation line:\n%s", out.String())
	}
	// The recording must be detached after the run.
	if benchutil.Rec != nil {
		t.Fatal("recording left active after run")
	}
}

// TestJSONLatencyQuantiles drives the tail-latency figure through the -json
// path and checks the contract the benchdiff p99 gate depends on: every
// point of every slice-store series carries latency quantiles that are
// finite, positive, and monotone (p50 <= p99 <= p999 <= max). A +Inf or
// inverted quantile here would silently corrupt the committed reference the
// CI gate diffs against.
func TestJSONLatencyQuantiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_taillat.json")
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "taillat", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("benchmark -fig taillat -json exited %d: %s", code, errOut.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchutil.Recording
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if rec.Figure != "taillat" || len(rec.Points) == 0 {
		t.Fatalf("unexpected recording: figure=%q points=%d", rec.Figure, len(rec.Points))
	}
	seen := map[string]int{}
	for _, p := range rec.Points {
		seen[p.Series]++
		q := p.LatencyNS
		if q == nil {
			t.Fatalf("point %s x=%v has no latency quantiles", p.Series, p.X)
		}
		for _, name := range []string{"p50", "p99", "p999", "max"} {
			v, ok := q[name]
			if !ok {
				t.Fatalf("point %s x=%v missing quantile %q: %v", p.Series, p.X, name, q)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Fatalf("point %s x=%v quantile %s = %v, want finite positive", p.Series, p.X, name, v)
			}
		}
		if !(q["p50"] <= q["p99"] && q["p99"] <= q["p999"] && q["p999"] <= q["max"]) {
			t.Fatalf("point %s x=%v quantiles not monotone: %v", p.Series, p.X, q)
		}
	}
	for _, series := range []string{"lazy-slicing", "eager-slicing", "daba-slicing"} {
		if seen[series] == 0 {
			t.Fatalf("taillat recording missing series %q (saw %v)", series, seen)
		}
	}
}
