package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scotty/internal/benchutil"
)

func TestTable1SmokeRun(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("benchmark -fig table1 exited %d: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"general stream slicing benchmark", "Table 1", "technique", "formula", "measured"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// The table must contain data rows, not just headers.
	if strings.Count(got, "\n") < 5 {
		t.Fatalf("suspiciously short output:\n%s", got)
	}
}

func TestCSVModeEmitsCSV(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "table1", "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("benchmark -csv exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), ",") {
		t.Fatalf("CSV mode produced no comma-separated rows:\n%s", out.String())
	}
}

func TestUnknownFigureExitsNonZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "99"}, &out, &errOut); code == 0 {
		t.Fatal("unknown figure should exit non-zero")
	}
	if code := run(nil, &out, &errOut); code == 0 {
		t.Fatal("missing -fig should exit non-zero")
	}
}

func TestJSONRecordingArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fig15.json")
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "15", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("benchmark -json exited %d: %s", code, errOut.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchutil.Recording
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, raw)
	}
	if rec.Figure != "15" || rec.Scale != "quick" || len(rec.Points) == 0 {
		t.Fatalf("unexpected recording: figure=%q scale=%q points=%d", rec.Figure, rec.Scale, len(rec.Points))
	}
	for _, p := range rec.Points {
		if p.Series == "" {
			t.Fatalf("point without series: %+v", p)
		}
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Fatalf("missing confirmation line:\n%s", out.String())
	}
	// The recording must be detached after the run.
	if benchutil.Rec != nil {
		t.Fatal("recording left active after run")
	}
}
