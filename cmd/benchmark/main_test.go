package main

import (
	"strings"
	"testing"
)

func TestTable1SmokeRun(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("benchmark -fig table1 exited %d: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"general stream slicing benchmark", "Table 1", "technique", "formula", "measured"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// The table must contain data rows, not just headers.
	if strings.Count(got, "\n") < 5 {
		t.Fatalf("suspiciously short output:\n%s", got)
	}
}

func TestCSVModeEmitsCSV(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "table1", "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("benchmark -csv exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), ",") {
		t.Fatalf("CSV mode produced no comma-separated rows:\n%s", out.String())
	}
}

func TestUnknownFigureExitsNonZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "99"}, &out, &errOut); code == 0 {
		t.Fatal("unknown figure should exit non-zero")
	}
	if code := run(nil, &out, &errOut); code == 0 {
		t.Fatal("missing -fig should exit non-zero")
	}
}
