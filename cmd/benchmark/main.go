// Command benchmark regenerates the tables and figures of the paper's
// evaluation (§6). Each figure is one sub-experiment:
//
//	benchmark -fig 8          # in-order throughput, context-free windows
//	benchmark -fig 9          # throughput with disorder + session windows
//	benchmark -fig 10         # memory consumption
//	benchmark -fig 11         # output latency of aggregate stores
//	benchmark -fig 12         # impact of stream order
//	benchmark -fig 13         # impact of aggregation functions
//	benchmark -fig 14         # holistic aggregations across techniques
//	benchmark -fig 15         # split (recompute) cost
//	benchmark -fig 16         # impact of window measures
//	benchmark -fig 17         # parallel stream slicing
//	benchmark -fig taillat    # per-tuple tail latency of the slice stores
//	benchmark -fig fleet      # factor-window sharing across correlated queries
//	benchmark -fig membound   # keyed state under a memory budget (spill tier)
//	benchmark -fig table1     # memory formulas vs measurement
//	benchmark -fig ablation   # design-choice ablations
//	benchmark -fig all        # everything
//
// -full selects the paper-sized configuration (several minutes); the default
// quick scale finishes in well under a minute per figure and preserves every
// trend.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"scotty/internal/benchutil"
	"scotty/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable command body: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchmark", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "", "experiment id: 8..17, table1, taillat, ablation, or all")
	full := fs.Bool("full", false, "run at the paper-sized scale")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonPath := fs.String("json", "", "also write the results as machine-readable JSON to this path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	benchutil.CSVMode = *csv

	if *fig == "" {
		fs.Usage()
		return 2
	}
	sc := experiments.Quick()
	scaleName := "quick"
	if *full {
		sc = experiments.Full()
		scaleName = "full"
	}
	if *jsonPath != "" {
		benchutil.StartRecording(*fig, scaleName)
		defer benchutil.StopRecording()
	}
	fmt.Fprintf(stdout, "general stream slicing benchmark — GOMAXPROCS=%d, scale=%s\n",
		runtime.GOMAXPROCS(0), scaleName)
	known, err := experiments.Run(*fig, stdout, sc)
	if !known {
		fmt.Fprintf(stderr, "unknown experiment %q\n", *fig)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "experiment %s: %v\n", *fig, err)
		return 1
	}
	if *jsonPath != "" {
		if err := writeRecording(benchutil.StopRecording(), *jsonPath); err != nil {
			fmt.Fprintf(stderr, "writing %s: %v\n", *jsonPath, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
	}
	return 0
}

// writeRecording renders the recording to path and verifies the artifact is
// parseable, non-empty JSON — the file is a CI contract, not just a log.
func writeRecording(rec *benchutil.Recording, path string) error {
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		return err
	}
	if !json.Valid(buf.Bytes()) {
		return fmt.Errorf("recording is not valid JSON")
	}
	if len(rec.Points) == 0 {
		return fmt.Errorf("recording holds no data points")
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
