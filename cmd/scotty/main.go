// Command scotty runs an ad-hoc windowed aggregation over a CSV stream of
// (timestamp-ms, value) pairs from stdin — or over a generated demo stream —
// using the general stream slicing operator. It demonstrates the operator as
// a standalone tool:
//
//	scotty -window tumbling -length 5000 -agg sum < events.csv
//	scotty -window session -gap 1000 -agg mean -demo 100000
//	scotty -window sliding -length 10000 -slide 2000 -agg p90 -ooo 0.2
//	scotty -window sliding -length 10000 -slide 2000 -store daba -demo 100000
//	scotty -windows sliding:10000:2000,sliding:20000:2000,tumbling:5000 -demo 100000
//
// -windows runs a fleet of concurrent window queries over one stream through
// the sharing layer (docs/SHARING.md): exact duplicates are deduplicated and
// correlated periodic time windows are rewritten onto cost-chosen factor
// windows, so the members share physical slicing work. Fleet result rows are
// prefixed with their logical query id (q0, q1, ...).
//
// Input events may arrive out of order; results are emitted on periodic
// watermarks, late events produce update rows. Epoch-millisecond timestamps
// are fine: time windows are internally rebased by a multiple of the slide
// (bounds print unchanged), so the run does not walk the empty windows
// between time zero and the first tuple.
//
// SIGINT or SIGTERM drains instead of killing: the feed stops, pending
// windows are flushed with a final watermark, and — when -checkpoint-dir is
// set — the operator state is snapshotted to <dir>/final.sck before the
// process exits 0. A later run with the same flags restores that snapshot.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"scotty/internal/aggregate"
	"scotty/internal/checkpoint"
	"scotty/internal/core"
	"scotty/internal/fleet"
	"scotty/internal/obs"
	"scotty/internal/ops"
	"scotty/internal/stream"
	"scotty/internal/window"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable command body: flags in, exit code out. Canceling ctx
// (a signal in production, a test hook here) stops the feed and triggers the
// drain-and-checkpoint shutdown path.
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scotty", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		winType  = fs.String("window", "tumbling", "tumbling | sliding | session | count")
		windows  = fs.String("windows", "", "comma-separated fleet of window queries sharing one stream, e.g. 'sliding:10000:2000,tumbling:5000,session:1000,count:100' (overrides -window/-length/-slide/-gap)")
		length   = fs.Int64("length", 5000, "window length (ms, or tuples for -window count)")
		slide    = fs.Int64("slide", 0, "slide step for sliding windows (ms)")
		gap      = fs.Int64("gap", 1000, "inactivity gap for session windows (ms)")
		aggName  = fs.String("agg", "sum", "sum | count | mean | min | max | median | p90 | m4")
		store    = fs.String("store", "lazy", "slice store: lazy | eager | daba (daba assumes in-order input and forces -lateness 0)")
		demo     = fs.Int("demo", 0, "generate N demo events instead of reading stdin")
		ooo      = fs.Float64("ooo", 0, "fraction of demo events delivered out of order")
		lateness = fs.Int64("lateness", 2000, "allowed lateness (ms)")
		wmEvery  = fs.Int64("watermark", 1000, "watermark period (ms of event time)")
		metrics  = fs.String("metrics", "", "serve /metrics and /debug/slices on this address (:0 picks a free port; the URL is printed to stderr)")
		ckptDir  = fs.String("checkpoint-dir", "", "write a final operator snapshot to <dir>/final.sck on exit or SIGINT/SIGTERM, and restore it on start if present")
		keyed    = fs.Bool("keyed", false, "window each key's sub-stream independently (demo streams use the generator's key; CSV lines may carry one as 'ts,value,key'); rows are prefixed k<key>")
		budget   = fs.Int64("mem-budget", 0, "resident-bytes budget for keyed state; over budget, cold keys spill to -spill-dir (requires -keyed; 0 = unbounded)")
		spillDir = fs.String("spill-dir", "", "scratch directory for spilled key state (requires -mem-budget; default: a per-process dir under the system temp dir, removed on exit)")
		bpName   = fs.String("backpressure", "block", "ingest overload policy: block | drop-oldest | drop-newest | shed; non-block decouples input from processing through a bounded queue and sheds events under overload, counted in scotty_events_dropped_total (not supported with -keyed)")
		breaker  = fs.Bool("breaker", false, "guard row output with retry and a circuit breaker: rows the writer permanently rejects are dead-lettered (counted, and captured under -dlq-dir) instead of wedging or silently vanishing")
		dlqDir   = fs.String("dlq-dir", "", "directory receiving dead-lettered output rows as durable records (requires -breaker; read back with ops.ReadDLQ)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	policy, err := ops.ParsePolicy(*bpName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if policy != ops.Block && *keyed {
		fmt.Fprintln(stderr, "-backpressure: only block is supported with -keyed (per-key state makes event drops key-skewed)")
		return 2
	}
	if *breaker && *keyed {
		fmt.Fprintln(stderr, "-breaker is not supported with -keyed")
		return 2
	}
	if *dlqDir != "" && !*breaker {
		fmt.Fprintln(stderr, "-dlq-dir requires -breaker")
		return 2
	}

	var defs []window.Definition
	var step int64
	if *windows != "" {
		defs, step = parseWindows(*windows, *keyed, stderr)
	} else {
		var def window.Definition
		def, step = makeWindow(*winType, *length, *slide, *gap, *keyed, stderr)
		if def != nil {
			defs = []window.Definition{def}
		}
	}
	if len(defs) == 0 {
		return 2
	}
	if *budget > 0 && !*keyed {
		fmt.Fprintln(stderr, "-mem-budget requires -keyed")
		return 2
	}
	if *spillDir != "" && *budget <= 0 {
		fmt.Fprintln(stderr, "-spill-dir requires -mem-budget")
		return 2
	}

	var kind core.StoreKind
	switch *store {
	case "lazy":
		kind = core.StoreLazy
	case "eager":
		kind = core.StoreEager
	case "daba":
		kind = core.StoreDABA
	default:
		fmt.Fprintf(stderr, "unknown store %q\n", *store)
		return 2
	}
	ordered := kind == core.StoreDABA
	if ordered {
		// DABA rings are FIFO structures over closed slices; they require
		// the in-order processing mode, which admits no late tuples.
		if *ooo > 0 {
			fmt.Fprintln(stderr, "-store daba requires in-order input; drop -ooo")
			return 2
		}
		if *lateness != 0 {
			fmt.Fprintln(stderr, "note: -store daba forces -lateness 0 (in-order mode)")
			*lateness = 0
		}
	}

	var ms *metricsServer
	if *metrics != "" {
		var err error
		if ms, err = startMetrics(*metrics, stderr); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer ms.stop()
	}

	wm := stream.Watermarker{Period: *wmEvery, Lag: 2001}
	// Epoch-scale timestamps are rebased before they reach the operator:
	// window starts are absolute multiples of the slide, so a tumbling or
	// sliding query fed raw epoch milliseconds would otherwise emit (and
	// walk) hundreds of millions of a-priori-empty windows between time
	// zero and the first tuple. Shifting by a multiple of the slide maps
	// onto the identical window family; the offset is added back on output.
	rb := &rebaser{step: step, margin: wm.Lag + *lateness}
	var runItems func(op func(stream.Item[float64]))
	if *demo > 0 {
		events := demoEvents(*demo, *ooo)
		runItems = func(op func(stream.Item[float64])) {
			for _, it := range stream.Prepare(wm, events) {
				if ctx.Err() != nil {
					return
				}
				// The stream's closing MaxTime watermark is withheld
				// here (as in feedCSV): shutdown drains the operator
				// itself, after the resumable snapshot is taken.
				if it.Kind == stream.KindWatermark && it.Watermark == stream.MaxTime {
					return
				}
				op(it)
			}
		}
	} else {
		// CSV input streams: each line is parsed, watermarked, and
		// processed as it arrives, so a live -metrics endpoint observes
		// the run in progress instead of a post-hoc summary.
		runItems = func(op func(stream.Item[float64])) {
			feedCSV(ctx, stdin, stderr, wm, rb, op)
		}
	}

	// A non-block policy decouples ingest from processing through a bounded
	// ops.Edge: the feed goroutine parses and sends, the operator loop
	// receives, and under overload whole events are dropped by the policy —
	// counted, never silent. Watermarks are control flow and never dropped.
	if policy != ops.Block {
		var dropCounter *obs.Counter
		if ms != nil {
			dropCounter = ms.reg.Counter("scotty_events_dropped_total", obs.L("reason", policy.String()))
		}
		var droppedEvents atomic.Int64
		inner := runItems
		runItems = func(op func(stream.Item[float64])) {
			edge := ops.NewEdge(ops.EdgeConfig[stream.Item[float64]]{
				Capacity: ingestQueueLen,
				Policy:   policy,
				CanDrop:  func(it stream.Item[float64]) bool { return it.Kind == stream.KindEvent },
				OnDrop: func(stream.Item[float64]) {
					droppedEvents.Add(1)
					if dropCounter != nil {
						dropCounter.Inc()
					}
				},
			})
			go func() {
				inner(func(it stream.Item[float64]) { edge.Send(it) })
				edge.Close()
			}()
			for {
				it, ok := edge.Recv()
				if !ok {
					return
				}
				op(it)
			}
		}
		defer func() {
			if n := droppedEvents.Load(); n > 0 {
				fmt.Fprintf(stderr, "backpressure: dropped %d events (%s)\n", n, policy)
			}
		}()
	}

	if *keyed {
		if *windows != "" {
			// Per-key operators register the fleet members as plain
			// concurrent queries; the cross-query sharing rewrite
			// (dedup/factor windows) applies to the unkeyed fleet only.
			fmt.Fprintln(stderr, "keyed mode: -windows members run as unshared concurrent queries per key")
		}
		kq := keyedEnv{
			lateness: *lateness, store: kind, ordered: ordered, multi: len(defs) > 1,
			budget: *budget, spillDir: *spillDir, ckptDir: *ckptDir,
			wm: wm, rb: rb, ms: ms, demo: *demo, ooo: *ooo,
			ctx: ctx, stdin: stdin, stdout: stdout, stderr: stderr,
		}
		// Each per-key operator needs fresh window definitions (the trigger
		// cursor lives in the definition); the set was validated above, so
		// re-parsing cannot fail.
		newDefs := func() []window.Definition {
			if *windows != "" {
				ds, _ := parseWindows(*windows, true, io.Discard)
				return ds
			}
			def, _ := makeWindow(*winType, *length, *slide, *gap, true, io.Discard)
			return []window.Definition{def}
		}
		switch *aggName {
		case "sum":
			return runKeyed(newDefs, aggregate.Sum(stream.Val), kq)
		case "count":
			return runKeyed(newDefs, aggregate.Count[stream.Tuple](), kq)
		case "mean":
			return runKeyed(newDefs, aggregate.Mean(stream.Val), kq)
		case "min":
			return runKeyed(newDefs, aggregate.Min(stream.Val), kq)
		case "max":
			return runKeyed(newDefs, aggregate.Max(stream.Val), kq)
		case "median":
			return runKeyed(newDefs, aggregate.Median(stream.Val), kq)
		case "p90":
			return runKeyed(newDefs, aggregate.Percentile(0.9, stream.Val), kq)
		case "m4":
			return runKeyed(newDefs, aggregate.M4(stream.Val), kq)
		default:
			fmt.Fprintf(stderr, "unknown aggregation %q\n", *aggName)
			return 2
		}
	}

	q := queryEnv{lateness: *lateness, store: kind, ordered: ordered, fleet: *windows != "", ckptDir: *ckptDir, breaker: *breaker, dlqDir: *dlqDir, runItems: runItems, rb: rb, ms: ms, stdout: stdout, stderr: stderr}
	switch *aggName {
	case "sum":
		return runQuery(defs, aggregate.Sum[float64](ident), q)
	case "count":
		return runQuery(defs, aggregate.Count[float64](), q)
	case "mean":
		return runQuery(defs, aggregate.Mean[float64](ident), q)
	case "min":
		return runQuery(defs, aggregate.Min[float64](ident), q)
	case "max":
		return runQuery(defs, aggregate.Max[float64](ident), q)
	case "median":
		return runQuery(defs, aggregate.Median[float64](ident), q)
	case "p90":
		return runQuery(defs, aggregate.Percentile[float64](0.9, ident), q)
	case "m4":
		return runQuery(defs, aggregate.M4[float64](ident), q)
	default:
		fmt.Fprintf(stderr, "unknown aggregation %q\n", *aggName)
		return 2
	}
}

// ingestQueueLen is the -backpressure ingest edge's capacity in items. Tight
// enough that a stalled operator visibly engages the policy, roomy enough
// that parsing jitter alone never drops.
const ingestQueueLen = 256

// metricsServer owns the optional observability endpoint: the operator's
// registry on /metrics (Prometheus text or JSON), the latest slice-layout
// snapshot on /debug/slices, and the readiness/liveness probe on /healthz.
type metricsServer struct {
	reg     *obs.Registry
	slices  atomic.Value // []core.SliceInfo, published from the processing loop
	ready   atomic.Bool  // set once the run loop is processing items
	breaker atomic.Value // func() ops.State, published when -breaker guards the sink
	srv     *http.Server
}

// healthz is the /healthz response body. Ready reports whether the run loop
// is up (readiness); the watermark lag, breaker state, and loss counters are
// the liveness signals an external prober alarms on.
type healthz struct {
	Ready          bool   `json:"ready"`
	WatermarkLagMS int64  `json:"watermark_lag_ms"`
	Breaker        string `json:"breaker,omitempty"`
	DroppedEvents  int64  `json:"dropped_events"`
	DeadRows       int64  `json:"dead_rows"`
}

func startMetrics(addr string, stderr io.Writer) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	ms := &metricsServer{reg: obs.NewRegistry()}
	ms.slices.Store([]core.SliceInfo{})
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(ms.reg))
	mux.HandleFunc("/debug/slices", func(w http.ResponseWriter, r *http.Request) {
		sl := ms.slices.Load().([]core.SliceInfo)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Count  int              `json:"count"`
			Slices []core.SliceInfo `json:"slices"`
		}{len(sl), sl})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := healthz{
			Ready:          ms.ready.Load(),
			WatermarkLagMS: ms.seriesTotal("core_watermark_lag_ms"),
			DroppedEvents:  ms.seriesTotal("scotty_events_dropped_total"),
			DeadRows:       ms.seriesTotal("scotty_rows_dead_lettered_total"),
		}
		code := http.StatusOK
		if f, ok := ms.breaker.Load().(func() ops.State); ok {
			state := f()
			h.Breaker = state.String()
			if state == ops.Open {
				code = http.StatusServiceUnavailable
			}
		}
		if !h.Ready {
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(h)
	})
	ms.srv = &http.Server{Handler: mux}
	go ms.srv.Serve(ln)
	fmt.Fprintf(stderr, "metrics: http://%s/metrics\n", ln.Addr())
	return ms, nil
}

// seriesTotal sums every series of one metric name (labeled or not) in the
// registry — counters across their label sets, a plain gauge as itself.
func (ms *metricsServer) seriesTotal(name string) int64 {
	var total int64
	for _, m := range ms.reg.Snapshot() {
		if m.Value != nil && (m.Name == name || strings.HasPrefix(m.Name, name+"{")) {
			total += *m.Value
		}
	}
	return total
}

func (ms *metricsServer) stop() { ms.srv.Close() }

func ident(v float64) float64 { return v }

// makeWindow builds the window definition and reports the rebase step: the
// slide for time-measure periodic windows (whose edges are absolute multiples
// of it), 0 for windows that are translation-invariant (sessions) or rank-
// based (count) and need no rebasing. Session windows are typed by the tuple
// the operator ingests, so keyed runs need the keyed variant.
func makeWindow(kind string, length, slide, gap int64, keyed bool, stderr io.Writer) (window.Definition, int64) {
	switch kind {
	case "tumbling":
		return window.Tumbling(stream.Time, length), length
	case "sliding":
		if slide <= 0 {
			slide = length / 2
		}
		return window.Sliding(stream.Time, length, slide), slide
	case "session":
		if keyed {
			return window.Session[stream.Tuple](gap), 0
		}
		return window.Session[float64](gap), 0
	case "count":
		return window.Tumbling(stream.Count, length), 0
	default:
		fmt.Fprintf(stderr, "unknown window type %q\n", kind)
		return nil, 0
	}
}

// parseWindows parses the -windows fleet list. Each entry is kind:params with
// the same parameters as the single-window flags: tumbling:length,
// sliding:length[:slide], session:gap, count:n. The combined rebase step is
// the LCM of the members' steps — the offset must be a multiple of every
// periodic member's step (and is then also a multiple of every factor
// window's, whose length divides a member slide) for the shifted window
// families to map one-to-one onto the absolute ones.
func parseWindows(list string, keyed bool, stderr io.Writer) ([]window.Definition, int64) {
	var defs []window.Definition
	var step int64
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		arg := func(i int) int64 {
			if i >= len(parts) {
				return 0
			}
			n, err := strconv.ParseInt(strings.TrimSpace(parts[i]), 10, 64)
			if err != nil || n <= 0 {
				return -1
			}
			return n
		}
		length, slide, gap := arg(1), arg(2), int64(0)
		if parts[0] == "session" {
			gap, length = length, 0
			if gap == 0 {
				gap = -1 // session needs an explicit positive gap
			}
		} else if length <= 0 {
			length = -1
		}
		if length < 0 || slide < 0 || gap < 0 || len(parts) > 3 {
			fmt.Fprintf(stderr, "-windows: malformed entry %q (want kind:length[:slide], session:gap, or count:n)\n", item)
			return nil, 0
		}
		def, s := makeWindow(parts[0], length, slide, gap, keyed, stderr)
		if def == nil {
			return nil, 0
		}
		defs = append(defs, def)
		step = lcmStep(step, s)
	}
	if len(defs) == 0 {
		fmt.Fprintln(stderr, "-windows: empty window list")
		return nil, 0
	}
	return defs, step
}

// lcmStep folds one member's rebase step into the fleet-wide one. Zero means
// "no constraint" (sessions are translation-invariant, count windows ignore
// timestamps). Wildly coprime slides can push the LCM past any real stream's
// span; beyond ~50 days of milliseconds rebasing is disabled instead of
// risking overflow — the run then pays the empty-window walk it would avoid.
func lcmStep(a, b int64) int64 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	g := a
	for x := b; x != 0; g, x = x, g%x {
	}
	if l := a / g * b; l > 0 && l <= 1<<32 {
		return l
	}
	return 0
}

// rebaser shifts event timestamps into a small range before they reach the
// watermarker and operator, and shifts window bounds back on the way out.
// The offset is fixed at the first event: the largest multiple of step at or
// below firstTS-margin (clamped to 0, so small-timestamp streams pass through
// untouched). The margin covers the watermark lag plus the allowed lateness,
// so every event the operator would accept still rebases to a non-negative
// time. Because the offset is a multiple of the slide, the rebased window
// family maps one-to-one onto the absolute one — printed bounds are exact;
// the only difference is that the a-priori-empty windows between time zero
// and the first tuple are never materialized.
type rebaser struct {
	step   int64 // 0 disables rebasing
	margin int64
	off    int64
	set    bool
}

func (rb *rebaser) shift(ts int64) int64 {
	if rb.step <= 0 {
		return ts
	}
	if !rb.set {
		rb.set = true
		if lo := ts - rb.margin; lo > 0 {
			rb.off = lo - (lo % rb.step)
		}
	}
	return ts - rb.off
}

func (rb *rebaser) unshift(t int64) int64 { return t + rb.off }

// queryEnv carries the aggregation-independent plumbing of one scotty run
// into runQuery, which is generic over the aggregate's partial/result types.
type queryEnv struct {
	lateness int64
	store    core.StoreKind
	ordered  bool
	fleet    bool
	ckptDir  string
	breaker  bool
	dlqDir   string
	runItems func(func(stream.Item[float64]))
	rb       *rebaser
	ms       *metricsServer
	stdout   io.Writer
	stderr   io.Writer
}

// operator abstracts the two run shapes over one processing surface: a single
// window on a bare slicing core, or a -windows fleet sharing physical work
// across its members (dedup + factor-window rewrite, docs/SHARING.md). Both
// satisfy it with identical method sets, so the run loop, the metrics
// publisher, and the checkpoint seal/restore path are written once.
type operator[Out any] interface {
	ProcessElement(stream.Event[float64]) []core.Result[Out]
	ProcessWatermark(int64) []core.Result[Out]
	SliceSnapshot() []core.SliceInfo
	Snapshot() ([]byte, error)
	Restore([]byte) error
}

func runQuery[A any, Out any](defs []window.Definition, f aggregate.Function[float64, A, Out], q queryEnv) int {
	rb, ms, stdout, stderr := q.rb, q.ms, q.stdout, q.stderr
	opts := core.Options{Lateness: q.lateness, Store: q.store, Ordered: q.ordered}
	if ms != nil {
		opts.Metrics = ms.reg
	}
	var ag operator[Out]
	if q.fleet {
		fl := fleet.New(f, fleet.Options{Options: opts})
		for _, def := range defs {
			if _, err := fl.AddQuery(def); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
		}
		fmt.Fprintf(stderr, "%s\n", fl)
		ag = fl
	} else {
		ca := core.New(f, opts)
		if _, err := ca.AddQuery(defs[0]); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		ag = ca
	}

	// The same recovery metric series the dataflow engine exposes, so a
	// scraped scotty run reports its checkpoint activity under familiar
	// names: restores count as recoveries, the final snapshot observes its
	// size and write latency.
	var recoveries *obs.Counter
	var ckptBytes, ckptDurMS *obs.Histogram
	if ms != nil && q.ckptDir != "" {
		recoveries = ms.reg.Counter("engine_recoveries_total")
		ckptBytes = ms.reg.Histogram("checkpoint_bytes", obs.ExponentialBounds(64, 4, 12))
		ckptDurMS = ms.reg.Histogram("checkpoint_duration_ms", nil)
	}
	ckptPath := ""
	if q.ckptDir != "" {
		if err := os.MkdirAll(q.ckptDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "checkpoint: %v\n", err)
			return 1
		}
		ckptPath = filepath.Join(q.ckptDir, "final.sck")
		if data, err := os.ReadFile(ckptPath); err == nil {
			if err := restoreFinal(ag, rb, data); err != nil {
				fmt.Fprintf(stderr, "checkpoint: ignoring %s: %v\n", ckptPath, err)
			} else {
				fmt.Fprintf(stderr, "checkpoint: restored state from %s\n", ckptPath)
				if recoveries != nil {
					recoveries.Inc()
				}
			}
		}
	}

	out := bufio.NewWriter(stdout)
	defer out.Flush()
	var sink *rowSink
	if q.breaker {
		var err error
		if sink, err = newRowSink(stdout, q.dlqDir, ms, stderr); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer sink.finish(stderr)
	}
	formatRows := func(w io.Writer, rs []core.Result[Out]) {
		for _, r := range rs {
			tag := ""
			if r.Update {
				tag = "  (update)"
			}
			s, e := r.Start, r.End
			if r.Measure == stream.Time {
				s, e = rb.unshift(s), rb.unshift(e)
			}
			if q.fleet {
				fmt.Fprintf(w, "q%d\t[%d, %d)\t n=%d\t %v%s\n", r.Query, s, e, r.N, r.Value, tag)
			} else {
				fmt.Fprintf(w, "[%d, %d)\t n=%d\t %v%s\n", s, e, r.N, r.Value, tag)
			}
		}
	}
	emit := func(rs []core.Result[Out]) {
		if sink != nil {
			// Guarded egress writes each result batch straight to the
			// underlying writer (the sticky bufio error state would defeat
			// per-batch retry), so a rejected batch is dead-lettered whole.
			if len(rs) == 0 {
				return
			}
			var buf bytes.Buffer
			formatRows(&buf, rs)
			sink.write(buf.Bytes(), len(rs))
			return
		}
		formatRows(out, rs)
	}
	snapshot := func() []core.SliceInfo {
		sl := ag.SliceSnapshot()
		for i := range sl {
			sl[i].Start = rb.unshift(sl[i].Start)
			sl[i].End = rb.unshift(sl[i].End)
		}
		return sl
	}
	if ms != nil {
		ms.ready.Store(true) // the run loop is up: /healthz turns ready
	}
	q.runItems(func(it stream.Item[float64]) {
		if it.Kind == stream.KindEvent {
			emit(ag.ProcessElement(it.Event))
			return
		}
		emit(ag.ProcessWatermark(it.Watermark))
		// Watermarks bound the output and debug staleness for a streaming
		// source: flush emitted rows and publish a fresh slice snapshot.
		out.Flush()
		if ms != nil {
			ms.slices.Store(snapshot())
		}
	})

	// Shutdown: snapshot first, then drain. The snapshot captures the
	// resumable mid-stream state (buffered slices plus the true watermark
	// position); the MaxTime drain that follows flushes every pending
	// window as a provisional final row. A restored run re-emits those
	// windows once the continuation stream completes them for real.
	if ckptPath != "" {
		start := time.Now()
		data, err := sealFinal(ag, rb)
		if err == nil {
			err = writeFileAtomic(ckptPath, data)
		}
		if err != nil {
			fmt.Fprintf(stderr, "checkpoint: %v\n", err)
			return 1
		}
		if ckptBytes != nil {
			ckptBytes.Observe(float64(len(data)))
			ckptDurMS.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		}
		fmt.Fprintf(stderr, "checkpoint: wrote %s (%d bytes)\n", ckptPath, len(data))
	}
	emit(ag.ProcessWatermark(stream.MaxTime))
	out.Flush()
	if ms != nil {
		ms.slices.Store(snapshot())
	}
	return 0
}

// sealFinal wraps the operator snapshot together with the rebase offset.
// The snapshot stores rebased window bounds and the watermark position, so a
// resumed run must keep shifting by the same offset: recomputing it from the
// continuation's first (later) event would misalign the restored state and
// the new tuples, and every printed bound would be off by the difference.
// The fleet and core snapshot codecs are distinct (a fleet snapshot nests the
// core's plus the sharing plan), so a checkpoint written by one run shape is
// rejected — and ignored with a warning — when restored by the other.
func sealFinal[Out any](ag operator[Out], rb *rebaser) ([]byte, error) {
	state, err := ag.Snapshot()
	if err != nil {
		return nil, err
	}
	enc := checkpoint.NewEncoder()
	enc.Int64(rb.off)
	enc.Bool(rb.set)
	enc.Bytes(state)
	return enc.Seal(), nil
}

// restoreFinal is the inverse of sealFinal: operator state into ag, the
// recorded rebase offset into rb (pinned, so the first continuation event
// does not recompute it).
func restoreFinal[Out any](ag operator[Out], rb *rebaser, data []byte) error {
	dec, err := checkpoint.NewDecoder(data)
	if err != nil {
		return err
	}
	off := dec.Int64()
	set := dec.Bool()
	state := dec.Bytes()
	if err := dec.Err(); err != nil {
		return err
	}
	if err := ag.Restore(state); err != nil {
		return err
	}
	rb.off, rb.set = off, set
	return nil
}

// writeFileAtomic writes data via a temp file and rename, so a crash during
// shutdown never leaves a half-written final.sck for the next run to trust
// (the snapshot codec would reject a torn file anyway; this avoids even
// producing one).
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// rowSink is scotty's guarded egress: every result-row batch passes a
// retry/circuit-breaker guard (ops defaults: 4 attempts with capped backoff;
// 5 consecutive failures open the breaker for 100ms) before reaching the
// output writer. Permanently rejected batches are dead-lettered — counted in
// scotty_rows_dead_lettered_total and, with -dlq-dir, captured as durable
// records — so a wedged or flapping consumer degrades the run instead of
// killing or silently truncating it. Delivery is at-least-once: a batch whose
// write failed midway may reappear whole in the DLQ.
type rowSink struct {
	w        io.Writer
	stderr   io.Writer
	guard    ops.Guard
	brk      *ops.Breaker
	dlq      *ops.DLQ
	dead     *obs.Counter
	deadRows atomic.Int64
}

func newRowSink(w io.Writer, dlqDir string, ms *metricsServer, stderr io.Writer) (*rowSink, error) {
	s := &rowSink{w: w, stderr: stderr, brk: ops.NewBreaker(ops.BreakerConfig{})}
	s.guard = ops.Guard{Breaker: s.brk}
	if ms != nil {
		s.dead = ms.reg.Counter("scotty_rows_dead_lettered_total")
		ms.breaker.Store(s.brk.State) // /healthz reports (and gates on) the live state
	}
	if dlqDir != "" {
		if err := os.MkdirAll(dlqDir, 0o755); err != nil {
			return nil, fmt.Errorf("dlq: %w", err)
		}
		dlq, err := ops.OpenDLQ(filepath.Join(dlqDir, "rows.dlq"))
		if err != nil {
			return nil, fmt.Errorf("dlq: %w", err)
		}
		s.dlq = dlq
	}
	return s, nil
}

// write offers one rendered batch to the guarded writer; rejection
// dead-letters all n rows.
func (s *rowSink) write(rows []byte, n int) {
	_, err := s.guard.Do(func() error {
		_, werr := s.w.Write(rows)
		return werr
	})
	if err == nil {
		return
	}
	s.deadRows.Add(int64(n))
	if s.dead != nil {
		s.dead.Add(int64(n))
	}
	if s.dlq != nil {
		if aerr := s.dlq.Append(ops.Record{Reason: err.Error(), Count: n, Payload: rows}); aerr != nil {
			fmt.Fprintf(s.stderr, "dlq: %v\n", aerr)
		}
	}
}

// finish prints the loss summary and releases the DLQ handle.
func (s *rowSink) finish(stderr io.Writer) {
	trips, recoveries := s.brk.Counts()
	if n := s.deadRows.Load(); n > 0 || trips > 0 {
		fmt.Fprintf(stderr, "breaker: %d rows dead-lettered (trips %d, recoveries %d)\n", n, trips, recoveries)
	}
	if s.dlq != nil {
		if err := s.dlq.Close(); err != nil {
			fmt.Fprintf(stderr, "dlq: %v\n", err)
		}
	}
}

func demoEvents(demo int, ooo float64) []stream.Event[float64] {
	raw := stream.Generate(stream.Football(), demo, 1)
	ev := make([]stream.Event[float64], len(raw))
	for i, e := range raw {
		ev[i] = stream.Event[float64]{Time: e.Time, Seq: e.Seq, Value: e.Value.V}
	}
	return stream.Apply(stream.Disorder{Fraction: ooo, MaxDelay: 2000, Seed: 7}, ev)
}

// feedCSV parses "timestamp-ms,value" lines as they arrive and hands each
// event — interleaved with due watermarks — to op immediately. Timestamps
// are rebased before the watermarker so epoch-scale inputs stay cheap.
// Canceling ctx abandons the (possibly blocked) read and returns without the
// Close watermark: shutdown drains the operator explicitly, and the snapshot
// written there must not see MaxTime as the restored watermark position.
func feedCSV(ctx context.Context, stdin io.Reader, stderr io.Writer, wm stream.Watermarker, rb *rebaser, op func(stream.Item[float64])) {
	// The scanner blocks in Read with no way to interrupt it, so it runs in
	// its own goroutine; the processing loop below stays responsive to ctx.
	// After cancellation the goroutine parks on the unbuffered send until
	// the input closes — for a real process that is at exit anyway.
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-ctx.Done():
				return
			}
		}
	}()
	feeder := stream.NewFeeder[float64](wm)
	var buf []stream.Item[float64]
	seq := int64(0)
	for {
		var line string
		var ok bool
		select {
		case <-ctx.Done():
			return
		case line, ok = <-lines:
		}
		if !ok {
			break
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 2 {
			fmt.Fprintf(stderr, "skipping malformed line: %q\n", line)
			continue
		}
		ts, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		v, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			fmt.Fprintf(stderr, "skipping malformed line: %q\n", line)
			continue
		}
		buf = feeder.Feed(buf[:0], stream.Event[float64]{Time: rb.shift(ts), Seq: seq, Value: v})
		seq++
		for _, it := range buf {
			op(it)
		}
	}
	// No feeder.Close here: EOF and cancellation share the shutdown path in
	// runQuery, which snapshots the resumable state and then drains.
}
