// Command scotty runs an ad-hoc windowed aggregation over a CSV stream of
// (timestamp-ms, value) pairs from stdin — or over a generated demo stream —
// using the general stream slicing operator. It demonstrates the operator as
// a standalone tool:
//
//	scotty -window tumbling -length 5000 -agg sum < events.csv
//	scotty -window session -gap 1000 -agg mean -demo 100000
//	scotty -window sliding -length 10000 -slide 2000 -agg p90 -ooo 0.2
//
// Input events may arrive out of order; results are emitted on periodic
// watermarks, late events produce update rows.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"scotty/internal/aggregate"
	"scotty/internal/core"
	"scotty/internal/stream"
	"scotty/internal/window"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable command body: flags in, exit code out.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scotty", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		winType  = fs.String("window", "tumbling", "tumbling | sliding | session | count")
		length   = fs.Int64("length", 5000, "window length (ms, or tuples for -window count)")
		slide    = fs.Int64("slide", 0, "slide step for sliding windows (ms)")
		gap      = fs.Int64("gap", 1000, "inactivity gap for session windows (ms)")
		aggName  = fs.String("agg", "sum", "sum | count | mean | min | max | median | p90 | m4")
		demo     = fs.Int("demo", 0, "generate N demo events instead of reading stdin")
		ooo      = fs.Float64("ooo", 0, "fraction of demo events delivered out of order")
		lateness = fs.Int64("lateness", 2000, "allowed lateness (ms)")
		wmEvery  = fs.Int64("watermark", 1000, "watermark period (ms of event time)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	def := makeWindow(*winType, *length, *slide, *gap, stderr)
	if def == nil {
		return 2
	}
	events := readOrGenerate(*demo, *ooo, stdin, stderr)

	runItems := func(op func(stream.Item[float64])) {
		items := stream.Prepare(stream.Watermarker{Period: *wmEvery, Lag: 2001}, events)
		for _, it := range items {
			op(it)
		}
	}

	switch *aggName {
	case "sum":
		return runQuery(def, aggregate.Sum[float64](ident), *lateness, runItems, stdout, stderr)
	case "count":
		return runQuery(def, aggregate.Count[float64](), *lateness, runItems, stdout, stderr)
	case "mean":
		return runQuery(def, aggregate.Mean[float64](ident), *lateness, runItems, stdout, stderr)
	case "min":
		return runQuery(def, aggregate.Min[float64](ident), *lateness, runItems, stdout, stderr)
	case "max":
		return runQuery(def, aggregate.Max[float64](ident), *lateness, runItems, stdout, stderr)
	case "median":
		return runQuery(def, aggregate.Median[float64](ident), *lateness, runItems, stdout, stderr)
	case "p90":
		return runQuery(def, aggregate.Percentile[float64](0.9, ident), *lateness, runItems, stdout, stderr)
	case "m4":
		return runQuery(def, aggregate.M4[float64](ident), *lateness, runItems, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "unknown aggregation %q\n", *aggName)
		return 2
	}
}

func ident(v float64) float64 { return v }

func makeWindow(kind string, length, slide, gap int64, stderr io.Writer) window.Definition {
	switch kind {
	case "tumbling":
		return window.Tumbling(stream.Time, length)
	case "sliding":
		if slide <= 0 {
			slide = length / 2
		}
		return window.Sliding(stream.Time, length, slide)
	case "session":
		return window.Session[float64](gap)
	case "count":
		return window.Tumbling(stream.Count, length)
	default:
		fmt.Fprintf(stderr, "unknown window type %q\n", kind)
		return nil
	}
}

func runQuery[A any, Out any](def window.Definition, f aggregate.Function[float64, A, Out], lateness int64, runItems func(func(stream.Item[float64])), stdout, stderr io.Writer) int {
	ag := core.New(f, core.Options{Lateness: lateness})
	if _, err := ag.AddQuery(def); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	out := bufio.NewWriter(stdout)
	defer out.Flush()
	emit := func(rs []core.Result[Out]) {
		for _, r := range rs {
			tag := ""
			if r.Update {
				tag = "  (update)"
			}
			fmt.Fprintf(out, "[%d, %d)\t n=%d\t %v%s\n", r.Start, r.End, r.N, r.Value, tag)
		}
	}
	runItems(func(it stream.Item[float64]) {
		if it.Kind == stream.KindEvent {
			emit(ag.ProcessElement(it.Event))
		} else {
			emit(ag.ProcessWatermark(it.Watermark))
		}
	})
	return 0
}

func readOrGenerate(demo int, ooo float64, stdin io.Reader, stderr io.Writer) []stream.Event[float64] {
	if demo > 0 {
		raw := stream.Generate(stream.Football(), demo, 1)
		ev := make([]stream.Event[float64], len(raw))
		for i, e := range raw {
			ev[i] = stream.Event[float64]{Time: e.Time, Seq: e.Seq, Value: e.Value.V}
		}
		return stream.Apply(stream.Disorder{Fraction: ooo, MaxDelay: 2000, Seed: 7}, ev)
	}
	var ev []stream.Event[float64]
	sc := bufio.NewScanner(stdin)
	seq := int64(0)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 2 {
			fmt.Fprintf(stderr, "skipping malformed line: %q\n", line)
			continue
		}
		ts, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		v, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			fmt.Fprintf(stderr, "skipping malformed line: %q\n", line)
			continue
		}
		ev = append(ev, stream.Event[float64]{Time: ts, Seq: seq, Value: v})
		seq++
	}
	return ev
}
