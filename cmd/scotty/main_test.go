package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"
)

// resultLine matches one emitted window row: "[start, end)\t n=N\t value".
var resultLine = regexp.MustCompile(`^\[-?\d+, -?\d+\)\t n=\d+\t \S`)

func runScotty(t *testing.T, args []string, stdin string) string {
	t.Helper()
	var out, errOut strings.Builder
	code := run(context.Background(), args, strings.NewReader(stdin), &out, &errOut)
	if code != 0 {
		t.Fatalf("scotty %v exited %d: %s", args, code, errOut.String())
	}
	return out.String()
}

func checkRows(t *testing.T, output string) int {
	t.Helper()
	rows := 0
	for _, line := range strings.Split(strings.TrimRight(output, "\n"), "\n") {
		if !resultLine.MatchString(line) {
			t.Fatalf("malformed result row %q", line)
		}
		rows++
	}
	if rows == 0 {
		t.Fatal("no window results emitted")
	}
	return rows
}

func TestDemoStreamEmitsWellFormedResults(t *testing.T) {
	out := runScotty(t, []string{"-window", "tumbling", "-length", "5000", "-agg", "sum", "-demo", "2000"}, "")
	checkRows(t, out)
}

func TestCSVStdinTumblingSum(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "%d,1\n", i*100)
	}
	out := runScotty(t, []string{"-window", "tumbling", "-length", "2000", "-agg", "count"}, b.String())
	rows := checkRows(t, out)
	// 200 events at 100ms spacing cover [0, 20000): ten 2s windows, the
	// last closed by the final watermark.
	if rows < 9 {
		t.Fatalf("expected ~10 tumbling windows, got %d rows:\n%s", rows, out)
	}
	if !strings.Contains(out, "n=20") {
		t.Fatalf("each full window should count 20 events:\n%s", out)
	}
}

func TestSessionAndHolisticAggregates(t *testing.T) {
	for _, agg := range []string{"median", "p90", "m4", "mean"} {
		out := runScotty(t, []string{"-window", "session", "-gap", "1000", "-agg", agg, "-demo", "1000", "-ooo", "0.1"}, "")
		checkRows(t, out)
	}
}

// TestStoreFlagSelectsDABA: every store kind must print the same windows for
// the same in-order CSV stream, and the daba store must reject flags that
// imply out-of-order input.
func TestStoreFlagSelectsDABA(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i*50, i%7)
	}
	args := func(store string) []string {
		return []string{"-window", "sliding", "-length", "2000", "-slide", "500", "-agg", "sum", "-store", store}
	}
	want := runScotty(t, args("lazy"), b.String())
	checkRows(t, want)
	for _, store := range []string{"eager", "daba"} {
		if got := runScotty(t, args(store), b.String()); got != want {
			t.Fatalf("-store %s output diverged from lazy:\n%s\nvs\n%s", store, got, want)
		}
	}

	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-store", "heap", "-demo", "10"}, strings.NewReader(""), &out, &errOut); code == 0 {
		t.Fatal("unknown store should exit non-zero")
	}
	if code := run(context.Background(), []string{"-store", "daba", "-ooo", "0.2", "-demo", "10"}, strings.NewReader(""), &out, &errOut); code == 0 {
		t.Fatal("-store daba with -ooo should exit non-zero")
	}
}

func TestUnknownFlagsExitNonZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-agg", "nope", "-demo", "10"}, strings.NewReader(""), &out, &errOut); code == 0 {
		t.Fatal("unknown aggregation should exit non-zero")
	}
	if code := run(context.Background(), []string{"-window", "heptagonal", "-demo", "10"}, strings.NewReader(""), &out, &errOut); code == 0 {
		t.Fatal("unknown window type should exit non-zero")
	}
}

// TestEpochTimestampsRebased guards the epoch-scale path end to end: raw
// epoch-millisecond CSV must finish in O(events) — the window sequence is
// rebased near the first tuple instead of being walked up from time zero
// (hundreds of millions of empty windows) — while printed bounds stay
// absolute.
func TestEpochTimestampsRebased(t *testing.T) {
	const base = int64(1_700_000_000_000)
	var b strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&b, "%d,1\n", base+int64(i)*10)
	}
	out := runScotty(t, []string{"-window", "tumbling", "-length", "2000", "-agg", "count"}, b.String())
	rows := checkRows(t, out)
	// 1000 events over 10s: five full 2s windows plus at most a couple of
	// margin windows around the edges — anything large means the leading
	// empty-window flood is back.
	if rows < 5 || rows > 12 {
		t.Fatalf("expected ~5 tumbling windows, got %d rows:\n%s", rows, out)
	}
	if !strings.Contains(out, fmt.Sprintf("[%d, %d)\t n=200\t 200", base, base+2000)) {
		t.Fatalf("first full window should print absolute epoch bounds:\n%s", out)
	}
}

// TestSmallTimestampsNotRebased pins the rebase no-op: streams starting near
// time zero keep the historical output byte for byte.
func TestSmallTimestampsNotRebased(t *testing.T) {
	out := runScotty(t, []string{"-window", "tumbling", "-length", "2000", "-agg", "sum"}, "1000,3.5\n2000,4.5\n")
	want := "[0, 2000)\t n=1\t 3.5\n[2000, 4000)\t n=1\t 4.5\n"
	if out != want {
		t.Fatalf("output changed:\n got %q\nwant %q", out, want)
	}
}

// fleetLine matches one fleet result row: "q<id>\t[start, end)\t n=N\t value".
var fleetLine = regexp.MustCompile(`^q(\d+)\t(\[-?\d+, -?\d+\)\t n=\d+\t \S.*)$`)

// TestWindowsFleetMatchesSingleRuns pins the -windows fleet path against the
// single-window path: each member's q<id>-prefixed rows must be exactly the
// rows a standalone run of that window prints, and an exact-duplicate member
// must share its twin's physical query (visible in the plan line on stderr)
// while still printing its own rows.
func TestWindowsFleetMatchesSingleRuns(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i*50, i%7)
	}
	in := b.String()

	var out, errOut strings.Builder
	args := []string{"-windows", "sliding:2000:500,tumbling:1000,sliding:2000:500", "-agg", "sum"}
	if code := run(context.Background(), args, strings.NewReader(in), &out, &errOut); code != 0 {
		t.Fatalf("fleet run exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "fleet(logical=3 physical=2") {
		t.Fatalf("duplicate member not deduplicated; plan line: %s", errOut.String())
	}

	rows := map[string][]string{}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		m := fleetLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed fleet row %q", line)
		}
		rows["q"+m[1]] = append(rows["q"+m[1]], m[2])
	}
	sortRows := func(rs []string) string {
		s := append([]string(nil), rs...)
		sort.Strings(s)
		return strings.Join(s, "\n")
	}

	singles := map[string][]string{
		"q0": {"-window", "sliding", "-length", "2000", "-slide", "500", "-agg", "sum"},
		"q1": {"-window", "tumbling", "-length", "1000", "-agg", "sum"},
	}
	for id, args := range singles {
		want := runScotty(t, args, in)
		got := rows[id]
		if sortRows(got) != sortRows(strings.Split(strings.TrimRight(want, "\n"), "\n")) {
			t.Fatalf("%s rows diverged from the standalone run:\n%s\nvs\n%s", id, strings.Join(got, "\n"), want)
		}
	}
	if sortRows(rows["q2"]) != sortRows(rows["q0"]) {
		t.Fatalf("duplicate q2 rows diverged from q0:\nq2:\n%s\nq0:\n%s", strings.Join(rows["q2"], "\n"), strings.Join(rows["q0"], "\n"))
	}
}

// TestWindowsBadSpecsExitNonZero covers the -windows parser's error paths.
func TestWindowsBadSpecsExitNonZero(t *testing.T) {
	for _, spec := range []string{"sliding", "session", "tumbling:0", "sliding:1000:-5", "heptagonal:9", "tumbling:1000:2:3", " , "} {
		var out, errOut strings.Builder
		if code := run(context.Background(), []string{"-windows", spec, "-demo", "10"}, strings.NewReader(""), &out, &errOut); code == 0 {
			t.Fatalf("-windows %q should exit non-zero", spec)
		}
	}
}

// TestWindowsCheckpointRestoreResumesFleet is the fleet shape of the restart
// contract: the snapshot carries the whole sharing plan (logical ids, dedup
// subscriptions, rebase offset), so a second run resumes every member and
// keeps their ids stable.
func TestWindowsCheckpointRestoreResumesFleet(t *testing.T) {
	const t0 = int64(1722470400000) // 2024-08-01 00:00:00 UTC, ms
	dir := t.TempDir()
	args := []string{"-windows", "tumbling:1000,sliding:2000:1000,tumbling:1000", "-agg", "sum", "-checkpoint-dir", dir}
	feed := func(offsets ...int64) string {
		var b strings.Builder
		for _, off := range offsets {
			fmt.Fprintf(&b, "%d,1\n", t0+off)
		}
		return b.String()
	}

	var out1, err1 strings.Builder
	if code := run(context.Background(), args, strings.NewReader(feed(0, 500, 1500, 2500)), &out1, &err1); code != 0 {
		t.Fatalf("first run exited %d: %s", code, err1.String())
	}
	if want := fmt.Sprintf("q0\t[%d, %d)", t0, t0+1000); !strings.Contains(out1.String(), want) {
		t.Fatalf("first run missing window %s:\n%s", want, out1.String())
	}
	if !strings.Contains(err1.String(), "checkpoint: wrote") {
		t.Fatalf("first run wrote no checkpoint: %s", err1.String())
	}

	var out2, err2 strings.Builder
	if code := run(context.Background(), args, strings.NewReader(feed(3500, 4500, 9000)), &out2, &err2); code != 0 {
		t.Fatalf("second run exited %d: %s", code, err2.String())
	}
	if !strings.Contains(err2.String(), "checkpoint: restored state from") {
		t.Fatalf("second run did not restore: %s", err2.String())
	}
	// Continuation windows from every member, still under their original ids:
	// the tumbling pair (q0 and its dedup twin q2) and the sliding member q1.
	for _, want := range []string{
		fmt.Sprintf("q0\t[%d, %d)", t0+4000, t0+5000),
		fmt.Sprintf("q2\t[%d, %d)", t0+4000, t0+5000),
		fmt.Sprintf("q1\t[%d, %d)", t0+3000, t0+5000),
	} {
		if !strings.Contains(out2.String(), want) {
			t.Fatalf("restored run missing continuation row %s:\n%s", want, out2.String())
		}
	}
}

// TestCancelDrainsAndWritesCheckpoint drives run() the way a SIGINT does:
// cancel the context mid-stream (stdin still open, scanner blocked) and
// require a clean exit that flushed pending windows and wrote final.sck.
func TestCancelDrainsAndWritesCheckpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	defer pw.Close()
	dir := t.TempDir()
	var out, errOut syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-window", "tumbling", "-length", "1000", "-agg", "sum", "-checkpoint-dir", dir}, pr, &out, &errOut)
	}()

	// Stream 10s of events; the 2001ms watermark lag means rows for the
	// early windows appear (and are flushed) while the feed is running.
	for ts := int64(0); ts <= 10_000; ts += 250 {
		if _, err := fmt.Fprintf(pw, "%d,1\n", ts); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "[0, 1000)") {
		if time.Now().After(deadline) {
			t.Fatalf("no window rows before cancel; stdout %q stderr %q", out.String(), errOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel() // the signal: stdin is still open, the scanner still blocked
	var code int
	select {
	case code = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancel")
	}
	if code != 0 {
		t.Fatalf("canceled run exited %d: %s", code, errOut.String())
	}
	// The drain must have emitted the windows the watermark had not reached
	// yet — the last full window ends at 10000 and only a MaxTime flush
	// closes it this early.
	if !strings.Contains(out.String(), "[9000, 10000)") {
		t.Fatalf("pending windows not drained on cancel:\n%s", out.String())
	}
	checkRows(t, out.String())
	if !strings.Contains(errOut.String(), "checkpoint: wrote") {
		t.Fatalf("no final checkpoint logged: %s", errOut.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "final.sck")); err != nil {
		t.Fatalf("final.sck missing: %v", err)
	}
}

// TestCheckpointRestoreResumesRun pins the restart half of the contract: a
// second run over the same checkpoint dir restores the snapshot instead of
// starting cold, and keeps producing windows for the continuation stream.
// Epoch-scale timestamps make the internal rebase offset non-zero, so this
// also pins that the offset is persisted with the snapshot: a resumed run
// that recomputed it from its own (later) first event would print every
// window bound shifted by the difference.
func TestCheckpointRestoreResumesRun(t *testing.T) {
	const t0 = int64(1722470400000) // 2024-08-01 00:00:00 UTC, ms
	dir := t.TempDir()
	args := []string{"-window", "tumbling", "-length", "1000", "-agg", "sum", "-checkpoint-dir", dir}
	feed := func(offsets ...int64) string {
		var b strings.Builder
		for _, off := range offsets {
			fmt.Fprintf(&b, "%d,1\n", t0+off)
		}
		return b.String()
	}

	var out1, err1 strings.Builder
	if code := run(context.Background(), args, strings.NewReader(feed(0, 500, 1500, 2500)), &out1, &err1); code != 0 {
		t.Fatalf("first run exited %d: %s", code, err1.String())
	}
	if want := fmt.Sprintf("[%d, %d)", t0, t0+1000); !strings.Contains(out1.String(), want) {
		t.Fatalf("first run missing window %s:\n%s", want, out1.String())
	}
	if !strings.Contains(err1.String(), "checkpoint: wrote") {
		t.Fatalf("first run wrote no checkpoint: %s", err1.String())
	}

	var out2, err2 strings.Builder
	if code := run(context.Background(), args, strings.NewReader(feed(3500, 4500, 9000)), &out2, &err2); code != 0 {
		t.Fatalf("second run exited %d: %s", code, err2.String())
	}
	if !strings.Contains(err2.String(), "checkpoint: restored state from") {
		t.Fatalf("second run did not restore: %s", err2.String())
	}
	if want := fmt.Sprintf("[%d, %d)", t0+4000, t0+5000); !strings.Contains(out2.String(), want) {
		t.Fatalf("restored run missing continuation window %s (rebase offset not resumed?):\n%s", want, out2.String())
	}
}

// keyedLine matches one keyed result row: "k<key>\t[start, end)\t n=N\t value".
var keyedLine = regexp.MustCompile(`^k\d+\t\[-?\d+, -?\d+\)\t n=\d+\t \S`)

// TestKeyedModeEmitsPerKeyRows pins the -keyed flag surface: demo streams
// partition by the generator's 16 keys, every key produces its own rows, and
// a -mem-budget bounded run (spilling through -spill-dir) emits the exact
// same rows as an unbounded one.
func TestKeyedModeEmitsPerKeyRows(t *testing.T) {
	base := []string{"-keyed", "-window", "sliding", "-length", "10000", "-slide", "2000", "-demo", "20000"}
	out := runScotty(t, base, "")
	keys := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !keyedLine.MatchString(line) {
			t.Fatalf("malformed keyed row %q", line)
		}
		keys[line[:strings.Index(line, "\t")]] = true
	}
	if len(keys) != 16 {
		t.Fatalf("expected rows for all 16 demo keys, got %d: %v", len(keys), keys)
	}

	spillDir := filepath.Join(t.TempDir(), "spill")
	bounded := runScotty(t, append([]string{"-mem-budget", "8192", "-spill-dir", spillDir}, base...), "")
	if bounded != out {
		t.Errorf("budgeted run output differs from unbounded run")
	}
}

// TestKeyedCSVKeyColumn checks the third CSV column routes rows to keys.
func TestKeyedCSVKeyColumn(t *testing.T) {
	in := "0,1,3\n500,2,4\n1200,4,3\n"
	out := runScotty(t, []string{"-keyed", "-window", "tumbling", "-length", "1000", "-lateness", "0", "-agg", "sum"}, in)
	for _, want := range []string{"k3\t[0, 1000)\t n=1\t 1", "k4\t[0, 1000)\t n=1\t 2", "k3\t[1000, 2000)\t n=1\t 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestKeyedFlagValidation pins the spill flag requirements.
func TestKeyedFlagValidation(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-mem-budget", "1024"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Errorf("-mem-budget without -keyed exited %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run(context.Background(), []string{"-keyed", "-spill-dir", t.TempDir()}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Errorf("-spill-dir without -mem-budget exited %d, want 2", code)
	}
}
