package main

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// resultLine matches one emitted window row: "[start, end)\t n=N\t value".
var resultLine = regexp.MustCompile(`^\[-?\d+, -?\d+\)\t n=\d+\t \S`)

func runScotty(t *testing.T, args []string, stdin string) string {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errOut)
	if code != 0 {
		t.Fatalf("scotty %v exited %d: %s", args, code, errOut.String())
	}
	return out.String()
}

func checkRows(t *testing.T, output string) int {
	t.Helper()
	rows := 0
	for _, line := range strings.Split(strings.TrimRight(output, "\n"), "\n") {
		if !resultLine.MatchString(line) {
			t.Fatalf("malformed result row %q", line)
		}
		rows++
	}
	if rows == 0 {
		t.Fatal("no window results emitted")
	}
	return rows
}

func TestDemoStreamEmitsWellFormedResults(t *testing.T) {
	out := runScotty(t, []string{"-window", "tumbling", "-length", "5000", "-agg", "sum", "-demo", "2000"}, "")
	checkRows(t, out)
}

func TestCSVStdinTumblingSum(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "%d,1\n", i*100)
	}
	out := runScotty(t, []string{"-window", "tumbling", "-length", "2000", "-agg", "count"}, b.String())
	rows := checkRows(t, out)
	// 200 events at 100ms spacing cover [0, 20000): ten 2s windows, the
	// last closed by the final watermark.
	if rows < 9 {
		t.Fatalf("expected ~10 tumbling windows, got %d rows:\n%s", rows, out)
	}
	if !strings.Contains(out, "n=20") {
		t.Fatalf("each full window should count 20 events:\n%s", out)
	}
}

func TestSessionAndHolisticAggregates(t *testing.T) {
	for _, agg := range []string{"median", "p90", "m4", "mean"} {
		out := runScotty(t, []string{"-window", "session", "-gap", "1000", "-agg", agg, "-demo", "1000", "-ooo", "0.1"}, "")
		checkRows(t, out)
	}
}

func TestUnknownFlagsExitNonZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-agg", "nope", "-demo", "10"}, strings.NewReader(""), &out, &errOut); code == 0 {
		t.Fatal("unknown aggregation should exit non-zero")
	}
	if code := run([]string{"-window", "heptagonal", "-demo", "10"}, strings.NewReader(""), &out, &errOut); code == 0 {
		t.Fatal("unknown window type should exit non-zero")
	}
}

// TestEpochTimestampsRebased guards the epoch-scale path end to end: raw
// epoch-millisecond CSV must finish in O(events) — the window sequence is
// rebased near the first tuple instead of being walked up from time zero
// (hundreds of millions of empty windows) — while printed bounds stay
// absolute.
func TestEpochTimestampsRebased(t *testing.T) {
	const base = int64(1_700_000_000_000)
	var b strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&b, "%d,1\n", base+int64(i)*10)
	}
	out := runScotty(t, []string{"-window", "tumbling", "-length", "2000", "-agg", "count"}, b.String())
	rows := checkRows(t, out)
	// 1000 events over 10s: five full 2s windows plus at most a couple of
	// margin windows around the edges — anything large means the leading
	// empty-window flood is back.
	if rows < 5 || rows > 12 {
		t.Fatalf("expected ~5 tumbling windows, got %d rows:\n%s", rows, out)
	}
	if !strings.Contains(out, fmt.Sprintf("[%d, %d)\t n=200\t 200", base, base+2000)) {
		t.Fatalf("first full window should print absolute epoch bounds:\n%s", out)
	}
}

// TestSmallTimestampsNotRebased pins the rebase no-op: streams starting near
// time zero keep the historical output byte for byte.
func TestSmallTimestampsNotRebased(t *testing.T) {
	out := runScotty(t, []string{"-window", "tumbling", "-length", "2000", "-agg", "sum"}, "1000,3.5\n2000,4.5\n")
	want := "[0, 2000)\t n=1\t 3.5\n[2000, 4000)\t n=1\t 4.5\n"
	if out != want {
		t.Fatalf("output changed:\n got %q\nwant %q", out, want)
	}
}
