// Keyed mode: -keyed partitions the stream by key and windows every key's
// sub-stream independently through core.Keyed. With -mem-budget the per-key
// state is bounded: cold keys spill to -spill-dir and re-hydrate
// transparently (docs/MEMORY.md). The single-operator mode in main.go is
// unaffected.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"scotty/internal/aggregate"
	"scotty/internal/checkpoint"
	"scotty/internal/core"
	"scotty/internal/spill"
	"scotty/internal/stream"
	"scotty/internal/window"
)

// keyedEnv carries one keyed scotty run's aggregation-independent plumbing
// into runKeyed (the keyed counterpart of queryEnv).
type keyedEnv struct {
	lateness int64
	store    core.StoreKind
	ordered  bool
	multi    bool // several queries: prefix rows with q<id>
	budget   int64
	spillDir string
	ckptDir  string
	wm       stream.Watermarker
	rb       *rebaser
	ms       *metricsServer
	demo     int
	ooo      float64
	ctx      context.Context
	stdin    io.Reader
	stdout   io.Writer
	stderr   io.Writer
}

// runKeyed takes the window set as a factory, not a slice: ContextFree
// definitions carry their trigger-cursor state, so every per-key operator
// needs its own fresh instances — a shared definition would advance one
// cursor for all keys and silence every operator but the first to trigger.
func runKeyed[A any, Out any](newDefs func() []window.Definition, f aggregate.Function[stream.Tuple, A, Out], q keyedEnv) int {
	rb, ms, stderr := q.rb, q.ms, q.stderr
	opts := core.Options{Lateness: q.lateness, Store: q.store, Ordered: q.ordered}
	if ms != nil {
		opts.Metrics = ms.reg
	}
	// Validate the query set once up front: newOp runs per key and must not
	// fail mid-stream.
	probe := core.New(f, opts)
	for _, def := range newDefs() {
		if _, err := probe.AddQuery(def); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	k := core.NewKeyed(func(v stream.Tuple) int32 { return v.Key }, 0, func() *core.Aggregator[stream.Tuple, A, Out] {
		ag := core.New(f, opts)
		for _, def := range newDefs() {
			ag.MustAddQuery(def)
		}
		return ag
	})

	if q.budget > 0 {
		dir := q.spillDir
		scratch := dir == ""
		if scratch {
			dir = filepath.Join(os.TempDir(), fmt.Sprintf("scotty-spill-%d", os.Getpid()))
		}
		st, err := spill.Open(dir)
		if err != nil {
			fmt.Fprintf(stderr, "spill: %v\n", err)
			return 1
		}
		cfg := core.SpillConfig{Budget: q.budget, Store: st}
		if ms != nil {
			cfg.Metrics = ms.reg
		}
		if err := k.EnableSpill(cfg); err != nil {
			fmt.Fprintf(stderr, "spill: %v\n", err)
			return 2
		}
		defer func() {
			resident, cold, bytes := k.SpillStats()
			fmt.Fprintf(stderr, "spill: %d keys resident, %d cold, %d bytes on disk at exit\n", resident, cold, bytes)
			//lint:ignore errflow spill blobs are scratch; a failed sweep leaves garbage, not state
			_ = st.Clear()
			if scratch {
				//lint:ignore errflow best-effort removal of the per-process temp dir
				_ = os.Remove(dir)
			}
		}()
	}

	ckptPath := ""
	if q.ckptDir != "" {
		if err := os.MkdirAll(q.ckptDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "checkpoint: %v\n", err)
			return 1
		}
		ckptPath = filepath.Join(q.ckptDir, "final.sck")
		if data, err := os.ReadFile(ckptPath); err == nil {
			if err := restoreKeyedFinal(k, rb, data); err != nil {
				fmt.Fprintf(stderr, "checkpoint: ignoring %s: %v\n", ckptPath, err)
			} else {
				fmt.Fprintf(stderr, "checkpoint: restored state from %s\n", ckptPath)
			}
		}
	}

	out := bufio.NewWriter(q.stdout)
	defer out.Flush()
	emit := func(rs []core.KeyedResult[int32, Out]) {
		for _, r := range rs {
			tag := ""
			if r.Update {
				tag = "  (update)"
			}
			s, e := r.Start, r.End
			if r.Measure == stream.Time {
				s, e = rb.unshift(s), rb.unshift(e)
			}
			if q.multi {
				fmt.Fprintf(out, "k%d\tq%d\t[%d, %d)\t n=%d\t %v%s\n", r.Key, r.Query, s, e, r.N, r.Value, tag)
			} else {
				fmt.Fprintf(out, "k%d\t[%d, %d)\t n=%d\t %v%s\n", r.Key, s, e, r.N, r.Value, tag)
			}
		}
	}
	process := func(it stream.Item[stream.Tuple]) {
		if it.Kind == stream.KindEvent {
			emit(k.ProcessElement(it.Event))
			return
		}
		emit(k.ProcessWatermark(it.Watermark))
		out.Flush()
	}

	if ms != nil {
		ms.ready.Store(true) // the run loop is up: /healthz turns ready
	}
	if q.demo > 0 {
		events := stream.Apply(stream.Disorder{Fraction: q.ooo, MaxDelay: 2000, Seed: 7},
			stream.Generate(stream.Football(), q.demo, 1))
		for _, it := range stream.Prepare(q.wm, events) {
			if q.ctx.Err() != nil {
				break
			}
			// Withhold the closing MaxTime watermark, as in the unkeyed
			// path: shutdown snapshots first, then drains.
			if it.Kind == stream.KindWatermark && it.Watermark == stream.MaxTime {
				break
			}
			process(it)
		}
	} else {
		feedKeyedCSV(q.ctx, q.stdin, stderr, q.wm, rb, process)
	}

	if ckptPath != "" {
		start := time.Now()
		data, err := sealKeyedFinal(k, rb)
		if err == nil {
			err = writeFileAtomic(ckptPath, data)
		}
		if err != nil {
			fmt.Fprintf(stderr, "checkpoint: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "checkpoint: wrote %s (%d bytes) in %v\n", ckptPath, len(data), time.Since(start).Round(time.Millisecond))
	}
	emit(k.ProcessWatermark(stream.MaxTime))
	out.Flush()
	return 0
}

// sealKeyedFinal and restoreKeyedFinal mirror sealFinal/restoreFinal for the
// keyed operator, with the same outer frame (rebase offset + state). Cold
// keys' blobs fold into the snapshot, so a budgeted run's checkpoint is
// complete regardless of what happened to be spilled at shutdown.
func sealKeyedFinal[A any, Out any](k *core.Keyed[int32, stream.Tuple, A, Out], rb *rebaser) ([]byte, error) {
	state, err := k.Snapshot()
	if err != nil {
		return nil, err
	}
	enc := checkpoint.NewEncoder()
	enc.Int64(rb.off)
	enc.Bool(rb.set)
	enc.Bytes(state)
	return enc.Seal(), nil
}

func restoreKeyedFinal[A any, Out any](k *core.Keyed[int32, stream.Tuple, A, Out], rb *rebaser, data []byte) error {
	dec, err := checkpoint.NewDecoder(data)
	if err != nil {
		return err
	}
	off := dec.Int64()
	set := dec.Bool()
	state := dec.Bytes()
	if err := dec.Err(); err != nil {
		return err
	}
	if err := k.Restore(state); err != nil {
		return err
	}
	rb.off, rb.set = off, set
	return nil
}

// feedKeyedCSV parses "timestamp-ms,value[,key]" lines (key defaults to 0)
// and hands each event — interleaved with due watermarks — to op, exactly
// like feedCSV does for the unkeyed path.
func feedKeyedCSV(ctx context.Context, stdin io.Reader, stderr io.Writer, wm stream.Watermarker, rb *rebaser, op func(stream.Item[stream.Tuple])) {
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-ctx.Done():
				return
			}
		}
	}()
	feeder := stream.NewFeeder[stream.Tuple](wm)
	var buf []stream.Item[stream.Tuple]
	seq := int64(0)
	for {
		var line string
		var ok bool
		select {
		case <-ctx.Done():
			return
		case line, ok = <-lines:
		}
		if !ok {
			break
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 2 || len(parts) > 3 {
			fmt.Fprintf(stderr, "skipping malformed line: %q\n", line)
			continue
		}
		ts, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		v, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		key := int64(0)
		var err3 error
		if len(parts) == 3 {
			key, err3 = strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 32)
		}
		if err1 != nil || err2 != nil || err3 != nil {
			fmt.Fprintf(stderr, "skipping malformed line: %q\n", line)
			continue
		}
		buf = feeder.Feed(buf[:0], stream.Event[stream.Tuple]{
			Time: rb.shift(ts), Seq: seq, Value: stream.Tuple{Key: int32(key), V: v},
		})
		seq++
		for _, it := range buf {
			op(it)
		}
	}
}
