package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"scotty/internal/core"
	"scotty/internal/obs"
)

// syncBuffer lets the test read stderr while run() is still writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var metricsURL = regexp.MustCompile(`metrics: (http://\S+)/metrics`)

// TestMetricsEndpointDuringRun drives scotty through a stdin pipe and polls
// the -metrics endpoint while the stream is still open: the counters and
// gauges must show the run in progress, and /debug/slices must serve the
// live slice layout.
func TestMetricsEndpointDuringRun(t *testing.T) {
	pr, pw := io.Pipe()
	var out, errOut syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(context.Background(), []string{"-window", "tumbling", "-length", "2000", "-agg", "sum", "-metrics", "127.0.0.1:0"}, pr, &out, &errOut)
	}()

	// The endpoint URL appears on stderr as soon as the listener is up.
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := metricsURL.FindStringSubmatch(errOut.String()); m != nil {
			base = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("no metrics URL on stderr:\n%s", errOut.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Stream events spanning many watermark periods, keeping stdin open.
	for i := 0; i < 200; i++ {
		if _, err := fmt.Fprintf(pw, "%d,1\n", i*100); err != nil {
			t.Fatal(err)
		}
	}

	fetch := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	metricValue := func(doc []obs.MetricJSON, name string) int64 {
		for _, m := range doc {
			if m.Name == name && m.Value != nil {
				return *m.Value
			}
		}
		return -1
	}

	// Poll until the run is visibly in progress: tuples ingested, live
	// slices, and a non-zero watermark lag (events at 19.9s, lag 2001ms).
	var snap struct {
		Metrics []obs.MetricJSON `json:"metrics"`
	}
	for {
		if err := json.Unmarshal(fetch("/metrics?format=json"), &snap); err != nil {
			t.Fatalf("metrics JSON: %v", err)
		}
		if metricValue(snap.Metrics, "core_tuples_total") > 0 &&
			metricValue(snap.Metrics, "core_slices") > 0 &&
			metricValue(snap.Metrics, "core_watermark_lag_ms") > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never became non-zero mid-run: %s", fetch("/metrics?format=json"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(string(fetch("/metrics")), "# TYPE core_tuples_total counter") {
		t.Fatal("/metrics default format is not Prometheus text")
	}

	var slices struct {
		Count  int              `json:"count"`
		Slices []core.SliceInfo `json:"slices"`
	}
	if err := json.Unmarshal(fetch("/debug/slices"), &slices); err != nil {
		t.Fatalf("/debug/slices JSON: %v", err)
	}
	if slices.Count == 0 || len(slices.Slices) != slices.Count {
		t.Fatalf("debug snapshot empty or inconsistent: %+v", slices)
	}

	pw.Close()
	if code := <-done; code != 0 {
		t.Fatalf("scotty exited %d: %s", code, errOut.String())
	}
	checkRows(t, out.String())
}

// TestFleetMetricsOnEndpoint runs a -windows fleet with the metrics endpoint
// up and asserts the sharing layer's catalogue (docs/OBSERVABILITY.md) on
// /metrics next to the core series: the logical/physical gauges must reflect
// the deduplicated plan, and once the factor-window rewrite engages, the
// rewrite-hit and slice-touches-saved counters must move.
func TestFleetMetricsOnEndpoint(t *testing.T) {
	pr, pw := io.Pipe()
	var out, errOut syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(context.Background(), []string{
			"-windows", "sliding:4000:250,sliding:8000:250,sliding:2000:250,sliding:4000:250",
			"-agg", "sum", "-metrics", "127.0.0.1:0"}, pr, &out, &errOut)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := metricsURL.FindStringSubmatch(errOut.String()); m != nil {
			base = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("no metrics URL on stderr:\n%s", errOut.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// 60s of events at 50ms spacing: enough watermarks past the rewrite
	// hand-over for every eligible member to be served from the factor ring.
	for ts := int64(0); ts <= 60_000; ts += 50 {
		if _, err := fmt.Fprintf(pw, "%d,2\n", ts); err != nil {
			t.Fatal(err)
		}
	}

	fetch := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	metricValue := func(doc []obs.MetricJSON, name string) int64 {
		for _, m := range doc {
			if m.Name == name && m.Value != nil {
				return *m.Value
			}
		}
		return -1
	}

	var snap struct {
		Metrics []obs.MetricJSON `json:"metrics"`
	}
	for {
		if err := json.Unmarshal(fetch("/metrics?format=json"), &snap); err != nil {
			t.Fatalf("metrics JSON: %v", err)
		}
		if metricValue(snap.Metrics, "query_logical_total") == 4 &&
			metricValue(snap.Metrics, "query_physical_total") > 0 &&
			metricValue(snap.Metrics, "rewrite_hits_total") > 0 &&
			metricValue(snap.Metrics, "slice_touches_saved_total") > 0 &&
			metricValue(snap.Metrics, "core_tuples_total") > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet metrics never converged mid-run: %s", fetch("/metrics?format=json"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The dedup twin shares a physical query: 4 logical, at most 3 member
	// specs plus factor windows, and never 4 direct physical queries once the
	// plan has settled into factored mode (rewrite hits above prove it has).
	if phys := metricValue(snap.Metrics, "query_physical_total"); phys <= 0 || phys > 4 {
		t.Fatalf("implausible query_physical_total %d for a deduplicated factored fleet", phys)
	}
	text := string(fetch("/metrics"))
	for _, want := range []string{
		"# TYPE query_logical_total gauge",
		"# TYPE query_physical_total gauge",
		"# TYPE rewrite_hits_total counter",
		"# TYPE slice_touches_saved_total counter",
		"# TYPE core_tuples_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics text format missing %q:\n%s", want, text)
		}
	}

	pw.Close()
	if code := <-done; code != 0 {
		t.Fatalf("scotty exited %d: %s", code, errOut.String())
	}
}
