package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"scotty/internal/ops"
)

// TestRobustnessFlagValidation pins the flag contract: malformed or
// inconsistent robustness flags fail fast with exit 2 instead of silently
// degrading.
func TestRobustnessFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-backpressure", "bogus", "-demo", "10"},
		{"-backpressure", "shed", "-keyed", "-demo", "10"},
		{"-breaker", "-keyed", "-demo", "10"},
		{"-dlq-dir", t.TempDir(), "-demo", "10"},
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if code := run(context.Background(), args, strings.NewReader(""), &out, &errOut); code != 2 {
			t.Errorf("scotty %v exited %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
	}
}

// slowWriter throttles every Write, modeling a consumer slower than the
// stream; the ingest edge in front of the operator must shed instead of
// queuing without bound.
type slowWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(2 * time.Millisecond)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

var droppedSummary = regexp.MustCompile(`backpressure: dropped (\d+) events \(drop-oldest\)`)

// TestBackpressureShedsUnderOverload overloads a -backpressure run with a
// fast stream against a slow output and asserts events were dropped by the
// policy — and reported, never silently.
func TestBackpressureShedsUnderOverload(t *testing.T) {
	var in strings.Builder
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&in, "%d,1\n", i)
	}
	var out slowWriter
	var errOut strings.Builder
	args := []string{"-window", "tumbling", "-length", "5", "-agg", "sum",
		"-watermark", "10", "-backpressure", "drop-oldest"}
	if code := run(context.Background(), args, strings.NewReader(in.String()), &out, &errOut); code != 0 {
		t.Fatalf("scotty exited %d: %s", code, errOut.String())
	}
	m := droppedSummary.FindStringSubmatch(errOut.String())
	if m == nil {
		t.Fatalf("no drop summary on stderr:\n%s", errOut.String())
	}
	if n, _ := strconv.Atoi(m[1]); n <= 0 {
		t.Fatalf("drop summary reports %s dropped events", m[1])
	}
}

// flakyWriter rejects the first failCalls writes, then heals. With the
// breaker's 5-failure trip threshold, call 6 is the half-open probe that
// must succeed and close it again.
type flakyWriter struct {
	mu        sync.Mutex
	calls     int
	failCalls int
	b         strings.Builder
}

func (f *flakyWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls <= f.failCalls {
		return 0, fmt.Errorf("injected sink failure %d", f.calls)
	}
	return f.b.Write(p)
}

func (f *flakyWriter) String() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.b.String()
}

var breakerSummary = regexp.MustCompile(`breaker: (\d+) rows dead-lettered \(trips (\d+), recoveries (\d+)\)`)

// TestBreakerDLQWithFlakyOutput drives -breaker -dlq-dir against a writer
// that rejects its first writes: the breaker must trip, the rejected rows
// must land in the DLQ with exact counts, and after the cooldown the
// half-open probe must recover the sink so the tail of the stream is
// delivered normally.
func TestBreakerDLQWithFlakyOutput(t *testing.T) {
	dlqDir := t.TempDir()
	pr, pw := io.Pipe()
	out := &flakyWriter{failCalls: 5}
	var errOut syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(context.Background(),
			[]string{"-window", "tumbling", "-length", "2000", "-agg", "sum",
				"-breaker", "-dlq-dir", dlqDir},
			pr, out, &errOut)
	}()

	// Phase 1: enough stream to emit several result batches into the failing
	// writer — retries exhaust, the breaker trips, batches dead-letter.
	for i := 0; i < 200; i++ {
		if _, err := fmt.Fprintf(pw, "%d,1\n", i*100); err != nil {
			t.Fatal(err)
		}
	}
	// Let the breaker's 100ms cooldown elapse while the stream is quiet.
	time.Sleep(150 * time.Millisecond)
	// Phase 2: the writer has healed; the first emission is the half-open
	// probe, which must succeed, recover the breaker, and deliver the tail.
	for i := 200; i < 400; i++ {
		if _, err := fmt.Fprintf(pw, "%d,1\n", i*100); err != nil {
			t.Fatal(err)
		}
	}
	pw.Close()
	if code := <-done; code != 0 {
		t.Fatalf("scotty exited %d: %s", code, errOut.String())
	}

	m := breakerSummary.FindStringSubmatch(errOut.String())
	if m == nil {
		t.Fatalf("no breaker summary on stderr:\n%s", errOut.String())
	}
	dead, _ := strconv.Atoi(m[1])
	trips, _ := strconv.Atoi(m[2])
	recoveries, _ := strconv.Atoi(m[3])
	if dead <= 0 || trips <= 0 {
		t.Fatalf("breaker summary shows no losses/trips: %s", m[0])
	}
	if recoveries <= 0 {
		t.Fatalf("breaker never recovered after the writer healed: %s", m[0])
	}
	if !strings.Contains(out.String(), "\t n=") {
		t.Fatalf("no rows delivered after recovery:\n%s", out.String())
	}

	// The DLQ must hold exactly the rows the summary counted.
	recs, err := ops.ReadDLQ(filepath.Join(dlqDir, "rows.dlq"))
	if err != nil {
		t.Fatalf("reading DLQ: %v", err)
	}
	var dlqRows int
	for _, r := range recs {
		dlqRows += r.Count
		if r.Reason == "" || len(r.Payload) == 0 {
			t.Fatalf("malformed DLQ record: %+v", r)
		}
	}
	if dlqRows != dead {
		t.Fatalf("DLQ holds %d rows, summary reported %d dead-lettered", dlqRows, dead)
	}
}

// TestHealthzEndpoint starts a run with -metrics and polls /healthz: once the
// run loop is up and watermarks are flowing, the probe must report ready with
// HTTP 200 and a live watermark lag.
func TestHealthzEndpoint(t *testing.T) {
	pr, pw := io.Pipe()
	var out, errOut syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(context.Background(),
			[]string{"-window", "tumbling", "-length", "2000", "-agg", "sum", "-metrics", "127.0.0.1:0"},
			pr, &out, &errOut)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := metricsURL.FindStringSubmatch(errOut.String()); m != nil {
			base = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("no metrics URL on stderr:\n%s", errOut.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	for i := 0; i < 200; i++ {
		if _, err := fmt.Fprintf(pw, "%d,1\n", i*100); err != nil {
			t.Fatal(err)
		}
	}

	var h struct {
		Ready          bool   `json:"ready"`
		WatermarkLagMS int64  `json:"watermark_lag_ms"`
		Breaker        string `json:"breaker"`
		DroppedEvents  int64  `json:"dropped_events"`
		DeadRows       int64  `json:"dead_rows"`
	}
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(raw, &h); err != nil {
			t.Fatalf("healthz JSON: %v in %q", err, raw)
		}
		if resp.StatusCode == http.StatusOK && h.Ready && h.WatermarkLagMS > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never became ready: HTTP %d, %q", resp.StatusCode, raw)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.DroppedEvents != 0 || h.DeadRows != 0 {
		t.Fatalf("healthy run reports losses: %+v", h)
	}

	pw.Close()
	if code := <-done; code != 0 {
		t.Fatalf("scotty exited %d: %s", code, errOut.String())
	}
}
